//! Runtime DRAM protocol checker: an observation-only watchdog over one
//! channel's timing and conservation invariants.
//!
//! The cycle-level results in this repository are only as trustworthy as
//! the memory model underneath them, so — following the runtime protocol
//! checking used by gem5-style DRAM controller models — every channel
//! can carry a [`ProtocolChecker`] that watches the *actual* service
//! stream and reports the first invariant it sees broken as a structured
//! [`InvariantViolation`]:
//!
//! * **bank timing** — a bank never begins a new access before the
//!   previous one released it, and every access phase matches the
//!   tRCD/tRP/tCL spacing implied by its row-buffer state;
//! * **row state** — the row-buffer state reported for each access
//!   agrees with an independently tracked shadow of each bank's open
//!   row;
//! * **bus non-overlap** — data-bus transfers on the channel never
//!   overlap in time and never start before the access phase ends;
//! * **conservation** — every admitted request is serviced at most once,
//!   nothing is serviced that was never admitted, and at end of run
//!   `admitted = serviced + still queued`.
//!
//! The checker is pure observation: it never mutates channel state, so a
//! run with the checker enabled is bit-identical to one without it. It is
//! enabled automatically in debug builds (see
//! [`Channel::with_threads`](crate::Channel::with_threads)), by the
//! `TCM_VERIFY` environment variable, or explicitly via
//! [`Channel::enable_verification`](crate::Channel::enable_verification)
//! / the `RunConfig` verify flag in `tcm-sim`.

use crate::channel::ServiceOutcome;
use std::collections::HashSet;
use tcm_types::{
    BankId, ChannelId, Cycle, DramTiming, Invariant, InvariantViolation, Request, Row,
};

/// Per-bank shadow state the checker tracks independently of [`Bank`]
/// (crate::Bank): what row *should* be open and when the bank *should*
/// next be free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BankShadow {
    open_row: Option<Row>,
    free_at: Cycle,
}

/// Observation-only runtime checker for one channel's DRAM protocol
/// invariants. See the [module docs](self) for the invariant list.
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    channel: ChannelId,
    banks: Vec<BankShadow>,
    /// End of the last data-bus transfer observed on this channel.
    bus_free_at: Cycle,
    /// Ids admitted into the request buffer (each exactly once).
    admitted: HashSet<u64>,
    /// Ids serviced by a bank (each exactly once).
    serviced: HashSet<u64>,
    /// First violation observed; sticky until [`ProtocolChecker::take_violation`].
    violation: Option<InvariantViolation>,
    /// Individual invariant checks performed (for tests/diagnostics).
    checks: u64,
}

impl ProtocolChecker {
    /// Creates a checker for `channel` with `num_banks` banks.
    pub fn new(channel: ChannelId, num_banks: usize) -> Self {
        Self {
            channel,
            banks: vec![
                BankShadow {
                    open_row: None,
                    free_at: 0,
                };
                num_banks
            ],
            bus_free_at: 0,
            admitted: HashSet::new(),
            serviced: HashSet::new(),
            violation: None,
            checks: 0,
        }
    }

    /// The first violation observed, if any.
    pub fn violation(&self) -> Option<&InvariantViolation> {
        self.violation.as_ref()
    }

    /// Removes and returns the first violation observed, if any.
    pub fn take_violation(&mut self) -> Option<InvariantViolation> {
        self.violation.take()
    }

    /// Number of individual invariant checks performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of distinct requests admitted so far.
    pub fn admitted(&self) -> usize {
        self.admitted.len()
    }

    /// Number of distinct requests serviced so far.
    pub fn serviced(&self) -> usize {
        self.serviced.len()
    }

    fn report(
        &mut self,
        invariant: Invariant,
        cycle: Cycle,
        bank: Option<BankId>,
        request: Option<Request>,
        detail: String,
    ) {
        if self.violation.is_none() {
            self.violation = Some(InvariantViolation {
                invariant,
                cycle,
                channel: self.channel,
                bank,
                request: request.map(|r| r.id),
                detail,
            });
        }
    }

    /// Observes a request being admitted into the channel's buffer at
    /// cycle `now` (call only on *successful* admission).
    pub fn on_admit(&mut self, request: &Request, now: Cycle) {
        self.checks += 1;
        if !self.admitted.insert(request.id.raw()) {
            self.report(
                Invariant::Conservation,
                now,
                None,
                Some(*request),
                format!("request {} admitted twice", request.id),
            );
        }
    }

    /// Observes one completed issue decision: the outcome the channel
    /// computed for a request, checked against the checker's own shadow
    /// state and `timing`.
    pub fn on_issue(&mut self, outcome: &ServiceOutcome, timing: &DramTiming, now: Cycle) {
        let request = outcome.request;
        let bank = request.addr.bank;
        let Some(shadow) = self.banks.get(bank.index()).copied() else {
            self.report(
                Invariant::BankTiming,
                now,
                Some(bank),
                Some(request),
                format!("request addressed bank {} of {}", bank, self.banks.len()),
            );
            return;
        };

        // Conservation: serviced exactly once, and only after admission.
        self.checks += 1;
        if !self.admitted.contains(&request.id.raw()) {
            self.report(
                Invariant::Conservation,
                now,
                Some(bank),
                Some(request),
                format!("request {} serviced but never admitted", request.id),
            );
        }
        self.checks += 1;
        if !self.serviced.insert(request.id.raw()) {
            self.report(
                Invariant::Conservation,
                now,
                Some(bank),
                Some(request),
                format!("request {} serviced twice", request.id),
            );
        }

        // Causality: service cannot begin before the request arrived.
        self.checks += 1;
        if outcome.bank_start < request.issued_at {
            self.report(
                Invariant::BankTiming,
                now,
                Some(bank),
                Some(request),
                format!(
                    "service began at cycle {} before arrival at cycle {}",
                    outcome.bank_start, request.issued_at
                ),
            );
        }

        // Bank timing: no overlap with the bank's previous service.
        self.checks += 1;
        if outcome.bank_start < shadow.free_at {
            self.report(
                Invariant::BankTiming,
                now,
                Some(bank),
                Some(request),
                format!(
                    "bank re-issued at cycle {} but busy until cycle {}",
                    outcome.bank_start, shadow.free_at
                ),
            );
        }

        // Row state: must match the shadow row-buffer's prediction.
        let predicted = match shadow.open_row {
            Some(open) if open == request.addr.row => tcm_types::RowState::Hit,
            Some(_) => tcm_types::RowState::Conflict,
            None => tcm_types::RowState::Closed,
        };
        self.checks += 1;
        if outcome.row_state != predicted {
            self.report(
                Invariant::RowState,
                now,
                Some(bank),
                Some(request),
                format!(
                    "reported row state `{}` but shadow row-buffer (open row {:?}) \
                     implies `{}`",
                    outcome.row_state, shadow.open_row, predicted
                ),
            );
        }

        // Bank timing: the access phase must match the tRCD/tRP/tCL
        // spacing for the row state actually encountered, and the data
        // transfer must follow the access phase.
        let access_done = outcome.bank_start + timing.access_phase(outcome.row_state);
        let bus_start = outcome
            .completes_at
            .saturating_sub(timing.fixed_overhead + timing.bus_burst);
        self.checks += 1;
        if bus_start < access_done {
            self.report(
                Invariant::BankTiming,
                now,
                Some(bank),
                Some(request),
                format!(
                    "data transfer began at cycle {} before the {} access phase \
                     ended at cycle {}",
                    bus_start, outcome.row_state, access_done
                ),
            );
        }
        self.checks += 1;
        let expected_service = timing.access_phase(outcome.row_state) + timing.bus_burst;
        if outcome.service_cycles != expected_service {
            self.report(
                Invariant::BankTiming,
                now,
                Some(bank),
                Some(request),
                format!(
                    "charged {} service cycles but {} spacing implies {}",
                    outcome.service_cycles, outcome.row_state, expected_service
                ),
            );
        }

        // Bus non-overlap: this transfer must start at or after the end
        // of the previous transfer on this channel.
        self.checks += 1;
        if bus_start < self.bus_free_at {
            self.report(
                Invariant::BusOverlap,
                now,
                Some(bank),
                Some(request),
                format!(
                    "data-bus transfer began at cycle {} while the bus was \
                     occupied until cycle {}",
                    bus_start, self.bus_free_at
                ),
            );
        }
        let bus_end = bus_start + timing.bus_burst;
        self.bus_free_at = self.bus_free_at.max(bus_end);

        // Bank held until its data left the bus (model invariant).
        self.checks += 1;
        if outcome.bank_free < bus_end {
            self.report(
                Invariant::BankTiming,
                now,
                Some(bank),
                Some(request),
                format!(
                    "bank released at cycle {} before its transfer ended at cycle {}",
                    outcome.bank_free, bus_end
                ),
            );
        }

        if let Some(shadow) = self.banks.get_mut(bank.index()) {
            shadow.open_row = Some(request.addr.row);
            shadow.free_at = outcome.bank_free;
        }
    }

    /// End-of-run conservation check: every admitted request must have
    /// been serviced exactly once or still be queued (`still_queued`
    /// ids, in any order). Reports a violation on mismatch.
    pub fn on_finish<'a>(
        &mut self,
        still_queued: impl IntoIterator<Item = &'a Request>,
        now: Cycle,
    ) {
        let queued: Vec<&Request> = still_queued.into_iter().collect();
        self.checks += 1;
        for request in &queued {
            if !self.admitted.contains(&request.id.raw()) {
                self.report(
                    Invariant::Conservation,
                    now,
                    None,
                    Some(**request),
                    format!("request {} queued at end of run but never admitted", request.id),
                );
                return;
            }
            if self.serviced.contains(&request.id.raw()) {
                self.report(
                    Invariant::Conservation,
                    now,
                    None,
                    Some(**request),
                    format!("request {} both serviced and still queued", request.id),
                );
                return;
            }
        }
        let accounted = self.serviced.len() + queued.len();
        if accounted != self.admitted.len() {
            self.report(
                Invariant::Conservation,
                now,
                None,
                None,
                format!(
                    "{} requests admitted but only {} accounted for \
                     ({} serviced + {} still queued)",
                    self.admitted.len(),
                    accounted,
                    self.serviced.len(),
                    queued.len()
                ),
            );
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{MemAddress, RequestId, RowState, ThreadId};

    fn timing() -> DramTiming {
        DramTiming::ddr2_800()
    }

    fn req(id: u64, bank: usize, row: usize, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(0),
            MemAddress::new(ChannelId::new(0), BankId::new(bank), Row::new(row)),
            at,
        )
    }

    /// A legal closed-row outcome starting at `start` for a fresh bank.
    fn legal_outcome(request: Request, start: Cycle, t: &DramTiming) -> ServiceOutcome {
        let access_done = start + t.access_phase(RowState::Closed);
        let bus_end = access_done + t.bus_burst;
        ServiceOutcome {
            request,
            row_state: RowState::Closed,
            bank_start: start,
            bank_free: bus_end,
            completes_at: bus_end + t.fixed_overhead,
            service_cycles: t.access_phase(RowState::Closed) + t.bus_burst,
        }
    }

    #[test]
    fn legal_stream_passes_all_checks() {
        let t = timing();
        let mut c = ProtocolChecker::new(ChannelId::new(0), 4);
        let r0 = req(0, 0, 7, 0);
        let r1 = req(1, 1, 9, 0);
        c.on_admit(&r0, 0);
        c.on_admit(&r1, 0);
        let o0 = legal_outcome(r0, 0, &t);
        c.on_issue(&o0, &t, 0);
        // Bank 1 starts at 0 but its transfer must wait for the bus.
        let access_done = t.access_phase(RowState::Closed);
        let bus_start = access_done + t.bus_burst; // after r0's transfer
        let o1 = ServiceOutcome {
            request: r1,
            row_state: RowState::Closed,
            bank_start: 0,
            bank_free: bus_start + t.bus_burst,
            completes_at: bus_start + t.bus_burst + t.fixed_overhead,
            service_cycles: t.access_phase(RowState::Closed) + t.bus_burst,
        };
        c.on_issue(&o1, &t, 0);
        c.on_finish([], o1.completes_at);
        assert!(c.violation().is_none(), "{:?}", c.violation());
        assert!(c.checks() > 10);
        assert_eq!(c.admitted(), 2);
        assert_eq!(c.serviced(), 2);
    }

    #[test]
    fn bank_overlap_is_reported() {
        let t = timing();
        let mut c = ProtocolChecker::new(ChannelId::new(0), 1);
        let (r0, r1) = (req(0, 0, 1, 0), req(1, 0, 2, 0));
        c.on_admit(&r0, 0);
        c.on_admit(&r1, 0);
        let o0 = legal_outcome(r0, 0, &t);
        c.on_issue(&o0, &t, 0);
        // Second access starts before the bank frees: violation.
        let mut o1 = legal_outcome(r1, o0.bank_free - 10, &t);
        o1.row_state = RowState::Conflict;
        o1.service_cycles = t.access_phase(RowState::Conflict) + t.bus_burst;
        let v = {
            c.on_issue(&o1, &t, 0);
            c.take_violation().expect("overlap must be reported")
        };
        assert_eq!(v.invariant, Invariant::BankTiming);
        assert_eq!(v.bank, Some(BankId::new(0)));
        assert_eq!(v.request, Some(RequestId::new(1)));
        assert!(v.detail.contains("busy until"), "{}", v.detail);
    }

    #[test]
    fn wrong_row_state_is_reported() {
        let t = timing();
        let mut c = ProtocolChecker::new(ChannelId::new(0), 1);
        let r0 = req(0, 0, 1, 0);
        c.on_admit(&r0, 0);
        // Fresh bank: claiming a Hit contradicts the shadow (Closed).
        let mut o0 = legal_outcome(r0, 0, &t);
        o0.row_state = RowState::Hit;
        o0.service_cycles = t.access_phase(RowState::Hit) + t.bus_burst;
        c.on_issue(&o0, &t, 0);
        let v = c.take_violation().expect("row-state mismatch must be reported");
        assert_eq!(v.invariant, Invariant::RowState);
        assert!(v.detail.contains("hit"), "{}", v.detail);
    }

    #[test]
    fn bus_overlap_is_reported() {
        let t = timing();
        let mut c = ProtocolChecker::new(ChannelId::new(0), 2);
        let (r0, r1) = (req(0, 0, 1, 0), req(1, 1, 1, 0));
        c.on_admit(&r0, 0);
        c.on_admit(&r1, 0);
        c.on_issue(&legal_outcome(r0, 0, &t), &t, 0);
        // Bank 1's transfer claims the same bus window as bank 0's.
        let o1 = legal_outcome(r1, 0, &t);
        c.on_issue(&o1, &t, 0);
        let v = c.take_violation().expect("bus overlap must be reported");
        assert_eq!(v.invariant, Invariant::BusOverlap);
        assert!(v.detail.contains("occupied"), "{}", v.detail);
    }

    #[test]
    fn double_service_and_unadmitted_service_are_reported() {
        let t = timing();
        let mut c = ProtocolChecker::new(ChannelId::new(0), 1);
        let r0 = req(0, 0, 1, 0);
        // Serviced but never admitted.
        c.on_issue(&legal_outcome(r0, 0, &t), &t, 0);
        let v = c.take_violation().expect("unadmitted service must be reported");
        assert_eq!(v.invariant, Invariant::Conservation);
        assert!(v.detail.contains("never admitted"), "{}", v.detail);

        // Serviced twice.
        let mut c = ProtocolChecker::new(ChannelId::new(0), 1);
        c.on_admit(&r0, 0);
        let o0 = legal_outcome(r0, 0, &t);
        c.on_issue(&o0, &t, 0);
        let mut o1 = legal_outcome(r0, o0.bank_free, &t);
        o1.row_state = RowState::Hit;
        o1.service_cycles = t.access_phase(RowState::Hit) + t.bus_burst;
        // Keep the other fields legal so only conservation trips.
        o1.completes_at = o1.bank_start + t.access_phase(RowState::Hit)
            + t.bus_burst + t.fixed_overhead;
        o1.bank_free = o1.bank_start + t.access_phase(RowState::Hit) + t.bus_burst;
        c.on_issue(&o1, &t, 0);
        let v = c.take_violation().expect("double service must be reported");
        assert_eq!(v.invariant, Invariant::Conservation);
        assert!(v.detail.contains("twice"), "{}", v.detail);
    }

    #[test]
    fn finish_detects_lost_requests() {
        let t = timing();
        let mut c = ProtocolChecker::new(ChannelId::new(0), 1);
        let (r0, r1) = (req(0, 0, 1, 0), req(1, 0, 2, 0));
        c.on_admit(&r0, 0);
        c.on_admit(&r1, 0);
        c.on_issue(&legal_outcome(r0, 0, &t), &t, 0);
        // r1 was admitted, never serviced, and is not in the queue: lost.
        c.on_finish([], 1000);
        let v = c.take_violation().expect("lost request must be reported");
        assert_eq!(v.invariant, Invariant::Conservation);
        assert!(v.detail.contains("admitted"), "{}", v.detail);

        // The same stream with r1 still queued is fine.
        let mut c = ProtocolChecker::new(ChannelId::new(0), 1);
        c.on_admit(&r0, 0);
        c.on_admit(&r1, 0);
        c.on_issue(&legal_outcome(r0, 0, &t), &t, 0);
        c.on_finish([&r1], 1000);
        assert!(c.violation().is_none());
    }

    #[test]
    fn first_violation_is_sticky() {
        let t = timing();
        let mut c = ProtocolChecker::new(ChannelId::new(0), 1);
        let r0 = req(0, 0, 1, 0);
        c.on_issue(&legal_outcome(r0, 0, &t), &t, 0); // never admitted
        let first = c.violation().cloned().expect("violation");
        c.on_issue(&legal_outcome(req(1, 0, 1, 0), 0, &t), &t, 0); // more trouble
        assert_eq!(c.violation(), Some(&first), "first violation wins");
    }
}
