//! A single DRAM bank: open-row state plus service timing.

use tcm_types::{Cycle, DramTiming, Row, RowState};

/// The access-phase timing computed by [`Bank::begin_service`].
///
/// The access phase covers precharge/activate/column-access at the bank;
/// the subsequent data-bus transfer is arbitrated separately by the
/// channel (see [`DataBus`](crate::DataBus)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankService {
    /// Cycle at which the bank actually began the access (>= request
    /// schedule time; waits for the bank to be ready).
    pub start: Cycle,
    /// Cycle at which the access phase ends and the data transfer may
    /// begin.
    pub access_done: Cycle,
    /// Row-buffer state the request encountered.
    pub row_state: RowState,
}

/// One DRAM bank.
///
/// A bank is busy from the moment a request is issued to it until the
/// request's data has left on the channel bus ([`Bank::finish_service`]
/// records that time). While busy it cannot accept another request; the
/// simulator only issues to banks whose [`Bank::ready_at`] has passed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<Row>,
    ready_at: Cycle,
    busy: bool,
}

impl Bank {
    /// Creates an idle, precharged bank (no open row).
    pub fn new() -> Self {
        Self {
            open_row: None,
            ready_at: 0,
            busy: false,
        }
    }

    /// The row currently held in the row-buffer, if any.
    #[inline]
    pub fn open_row(&self) -> Option<Row> {
        self.open_row
    }

    /// First cycle at which the bank can begin a new access.
    #[inline]
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Whether the bank is currently in the middle of servicing a request.
    #[inline]
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Row-buffer state a request for `row` would encounter right now.
    #[inline]
    pub fn row_state(&self, row: Row) -> RowState {
        match self.open_row {
            Some(open) if open == row => RowState::Hit,
            Some(_) => RowState::Conflict,
            None => RowState::Closed,
        }
    }

    /// Begins servicing an access to `row` at cycle `now`.
    ///
    /// The access starts at `max(now, ready_at)`. The row-buffer is
    /// updated to hold `row` (open-page policy: rows stay open until a
    /// conflicting access precharges them).
    ///
    /// # Panics
    ///
    /// Panics if the bank is already busy: the simulator must wait for
    /// [`Bank::finish_service`] before issuing again (issuing to a busy
    /// bank would silently corrupt timing).
    pub fn begin_service(&mut self, row: Row, now: Cycle, timing: &DramTiming) -> BankService {
        assert!(!self.busy, "bank issued while busy");
        let start = now.max(self.ready_at);
        let row_state = self.row_state(row);
        let access_done = start + timing.access_phase(row_state);
        self.open_row = Some(row);
        self.busy = true;
        // Until finish_service fixes the true end (after bus arbitration),
        // conservatively mark the bank unavailable forever.
        self.ready_at = Cycle::MAX;
        BankService {
            start,
            access_done,
            row_state,
        }
    }

    /// Completes the in-flight service: the bank becomes ready again at
    /// `busy_until` (the cycle the data transfer finished on the bus).
    ///
    /// # Panics
    ///
    /// Panics if the bank is not busy.
    pub fn finish_service(&mut self, busy_until: Cycle) {
        assert!(self.busy, "finish_service on idle bank");
        self.busy = false;
        self.ready_at = busy_until;
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::DramTiming;

    fn timing() -> DramTiming {
        DramTiming::ddr2_800()
    }

    #[test]
    fn fresh_bank_is_closed_and_ready() {
        let b = Bank::new();
        assert_eq!(b.open_row(), None);
        assert_eq!(b.ready_at(), 0);
        assert!(!b.is_busy());
        assert_eq!(b.row_state(Row::new(5)), RowState::Closed);
    }

    #[test]
    fn first_access_is_closed_then_hit_then_conflict() {
        let t = timing();
        let mut b = Bank::new();

        let s1 = b.begin_service(Row::new(7), 0, &t);
        assert_eq!(s1.row_state, RowState::Closed);
        assert_eq!(s1.start, 0);
        assert_eq!(s1.access_done, t.rcd + t.cl);
        b.finish_service(s1.access_done + t.bus_burst);

        // Same row: hit.
        let s2 = b.begin_service(Row::new(7), s1.access_done + t.bus_burst, &t);
        assert_eq!(s2.row_state, RowState::Hit);
        assert_eq!(s2.access_done - s2.start, t.cl);
        b.finish_service(s2.access_done + t.bus_burst);

        // Different row: conflict.
        let s3 = b.begin_service(Row::new(9), s2.access_done + t.bus_burst, &t);
        assert_eq!(s3.row_state, RowState::Conflict);
        assert_eq!(s3.access_done - s3.start, t.rp + t.rcd + t.cl);
    }

    #[test]
    fn service_waits_for_bank_ready() {
        let t = timing();
        let mut b = Bank::new();
        let s1 = b.begin_service(Row::new(1), 0, &t);
        b.finish_service(s1.access_done + t.bus_burst);
        // Issue "at" cycle 10, but the bank is only ready later.
        let s2 = b.begin_service(Row::new(1), 10, &t);
        assert_eq!(s2.start, s1.access_done + t.bus_burst);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn double_issue_panics() {
        let t = timing();
        let mut b = Bank::new();
        b.begin_service(Row::new(1), 0, &t);
        b.begin_service(Row::new(2), 0, &t);
    }

    #[test]
    fn open_row_tracks_last_access() {
        let t = timing();
        let mut b = Bank::new();
        let s = b.begin_service(Row::new(3), 0, &t);
        b.finish_service(s.access_done);
        assert_eq!(b.open_row(), Some(Row::new(3)));
        assert_eq!(b.row_state(Row::new(3)), RowState::Hit);
        assert_eq!(b.row_state(Row::new(4)), RowState::Conflict);
    }
}
