//! Per-channel DRAM bank timing state, struct-of-arrays.
//!
//! Bank state used to live in one small `Bank` object per bank; the hot
//! path (schedulability scans, issue timing) walks *all* banks of a
//! channel, so the state now lives in flat parallel arrays plus a busy
//! bitmask. The schedulability question — idle, past its ready cycle,
//! work pending — becomes one mask intersection and a short scan of a
//! contiguous `ready_at` array ([`BankArray::schedulable`]), instead of
//! a per-bank object walk.

use crate::queue::BankSet;
use tcm_types::{BankId, Cycle, DramTiming, Row, RowState};

/// The access-phase timing computed by [`BankArray::begin_service`].
///
/// The access phase covers precharge/activate/column-access at the bank;
/// the subsequent data-bus transfer is arbitrated separately by the
/// channel (see [`DataBus`](crate::DataBus)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankService {
    /// Cycle at which the bank actually began the access (>= request
    /// schedule time; waits for the bank to be ready).
    pub start: Cycle,
    /// Cycle at which the access phase ends and the data transfer may
    /// begin.
    pub access_done: Cycle,
    /// Row-buffer state the request encountered.
    pub row_state: RowState,
}

/// All banks of one channel, stored as parallel arrays.
///
/// A bank is busy from the moment a request is issued to it until the
/// request's data has left on the channel bus
/// ([`BankArray::finish_service`] records that time). While busy it
/// cannot accept another request; the simulator only issues to banks
/// whose ready cycle has passed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankArray {
    /// First cycle each bank can begin a new access (`Cycle::MAX` while
    /// the bank is busy).
    ready_at: Vec<Cycle>,
    /// Row currently held in each bank's row-buffer.
    open_row: Vec<Option<Row>>,
    /// Banks currently servicing a request.
    busy: BankSet,
}

impl BankArray {
    /// Creates `num_banks` idle, precharged banks (no open rows).
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` exceeds [`BankSet::MAX_BANKS`].
    pub fn new(num_banks: usize) -> Self {
        assert!(
            num_banks <= BankSet::MAX_BANKS,
            "channel supports at most {} banks",
            BankSet::MAX_BANKS
        );
        Self {
            ready_at: vec![0; num_banks],
            open_row: vec![None; num_banks],
            busy: BankSet::empty(),
        }
    }

    /// Number of banks.
    #[inline]
    pub fn len(&self) -> usize {
        self.ready_at.len()
    }

    /// Whether the channel has no banks (never true in a valid config).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ready_at.is_empty()
    }

    /// The row currently held in `bank`'s row-buffer, if any.
    #[inline]
    pub fn open_row(&self, bank: BankId) -> Option<Row> {
        self.open_row[bank.index()]
    }

    /// First cycle at which `bank` can begin a new access.
    #[inline]
    pub fn ready_at(&self, bank: BankId) -> Cycle {
        self.ready_at[bank.index()]
    }

    /// Whether `bank` is currently in the middle of servicing a request.
    #[inline]
    pub fn is_busy(&self, bank: BankId) -> bool {
        self.busy.contains(bank)
    }

    /// Number of banks currently servicing a request.
    #[inline]
    pub fn busy_count(&self) -> usize {
        self.busy.len()
    }

    /// Row-buffer state a request for `row` at `bank` would encounter.
    #[inline]
    pub fn row_state(&self, bank: BankId, row: Row) -> RowState {
        match self.open_row[bank.index()] {
            Some(open) if open == row => RowState::Hit,
            Some(_) => RowState::Conflict,
            None => RowState::Closed,
        }
    }

    /// The batched schedulability kernel: of the banks in `pending`
    /// (those with queued work), the ones that are idle *and* past their
    /// ready cycle at `now` — one mask intersection, then one compare per
    /// surviving bit against the flat `ready_at` array.
    #[inline]
    pub fn schedulable(&self, pending: BankSet, now: Cycle) -> BankSet {
        let mut out = pending.and_not(self.busy);
        for bank in out {
            // Busy banks park ready_at at Cycle::MAX, so this test alone
            // would suffice; the mask subtraction above just skips them
            // without touching the array.
            if self.ready_at[bank.index()] > now {
                out.remove(bank);
            }
        }
        out
    }

    /// Begins servicing an access to `row` at cycle `now`.
    ///
    /// The access starts at `max(now, ready_at)`. The row-buffer is
    /// updated to hold `row` (open-page policy: rows stay open until a
    /// conflicting access precharges them).
    ///
    /// # Panics
    ///
    /// Panics if the bank is already busy: the simulator must wait for
    /// [`BankArray::finish_service`] before issuing again (issuing to a
    /// busy bank would silently corrupt timing).
    pub fn begin_service(
        &mut self,
        bank: BankId,
        row: Row,
        now: Cycle,
        timing: &DramTiming,
    ) -> BankService {
        assert!(!self.busy.contains(bank), "bank issued while busy");
        let b = bank.index();
        let start = now.max(self.ready_at[b]);
        let row_state = self.row_state(bank, row);
        let access_done = start + timing.access_phase(row_state);
        self.open_row[b] = Some(row);
        self.busy.insert(bank);
        // Until finish_service fixes the true end (after bus arbitration),
        // conservatively mark the bank unavailable forever.
        self.ready_at[b] = Cycle::MAX;
        BankService {
            start,
            access_done,
            row_state,
        }
    }

    /// Completes the in-flight service: the bank becomes ready again at
    /// `busy_until` (the cycle the data transfer finished on the bus).
    ///
    /// # Panics
    ///
    /// Panics if the bank is not busy.
    pub fn finish_service(&mut self, bank: BankId, busy_until: Cycle) {
        assert!(self.busy.contains(bank), "finish_service on idle bank");
        self.busy.remove(bank);
        self.ready_at[bank.index()] = busy_until;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::DramTiming;

    fn timing() -> DramTiming {
        DramTiming::ddr2_800()
    }

    const B0: BankId = BankId::new(0);

    #[test]
    fn fresh_bank_is_closed_and_ready() {
        let b = BankArray::new(4);
        assert_eq!(b.open_row(B0), None);
        assert_eq!(b.ready_at(B0), 0);
        assert!(!b.is_busy(B0));
        assert_eq!(b.row_state(B0, Row::new(5)), RowState::Closed);
        assert_eq!(b.busy_count(), 0);
    }

    #[test]
    fn first_access_is_closed_then_hit_then_conflict() {
        let t = timing();
        let mut b = BankArray::new(1);

        let s1 = b.begin_service(B0, Row::new(7), 0, &t);
        assert_eq!(s1.row_state, RowState::Closed);
        assert_eq!(s1.start, 0);
        assert_eq!(s1.access_done, t.rcd + t.cl);
        b.finish_service(B0, s1.access_done + t.bus_burst);

        // Same row: hit.
        let s2 = b.begin_service(B0, Row::new(7), s1.access_done + t.bus_burst, &t);
        assert_eq!(s2.row_state, RowState::Hit);
        assert_eq!(s2.access_done - s2.start, t.cl);
        b.finish_service(B0, s2.access_done + t.bus_burst);

        // Different row: conflict.
        let s3 = b.begin_service(B0, Row::new(9), s2.access_done + t.bus_burst, &t);
        assert_eq!(s3.row_state, RowState::Conflict);
        assert_eq!(s3.access_done - s3.start, t.rp + t.rcd + t.cl);
    }

    #[test]
    fn service_waits_for_bank_ready() {
        let t = timing();
        let mut b = BankArray::new(1);
        let s1 = b.begin_service(B0, Row::new(1), 0, &t);
        b.finish_service(B0, s1.access_done + t.bus_burst);
        // Issue "at" cycle 10, but the bank is only ready later.
        let s2 = b.begin_service(B0, Row::new(1), 10, &t);
        assert_eq!(s2.start, s1.access_done + t.bus_burst);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn double_issue_panics() {
        let t = timing();
        let mut b = BankArray::new(1);
        b.begin_service(B0, Row::new(1), 0, &t);
        b.begin_service(B0, Row::new(2), 0, &t);
    }

    #[test]
    fn open_row_tracks_last_access() {
        let t = timing();
        let mut b = BankArray::new(1);
        let s = b.begin_service(B0, Row::new(3), 0, &t);
        b.finish_service(B0, s.access_done);
        assert_eq!(b.open_row(B0), Some(Row::new(3)));
        assert_eq!(b.row_state(B0, Row::new(3)), RowState::Hit);
        assert_eq!(b.row_state(B0, Row::new(4)), RowState::Conflict);
    }

    #[test]
    fn schedulable_masks_busy_and_not_ready_banks() {
        let t = timing();
        let mut b = BankArray::new(4);
        let mut pending = BankSet::empty();
        pending.insert(BankId::new(0));
        pending.insert(BankId::new(2));
        pending.insert(BankId::new(3));

        // Fresh banks: everything pending is schedulable.
        let ids: Vec<_> = b.schedulable(pending, 0).into_iter().collect();
        assert_eq!(ids, vec![BankId::new(0), BankId::new(2), BankId::new(3)]);

        // Bank 0 busy: masked out.
        let s = b.begin_service(BankId::new(0), Row::new(1), 0, &t);
        let ids: Vec<_> = b.schedulable(pending, 0).into_iter().collect();
        assert_eq!(ids, vec![BankId::new(2), BankId::new(3)]);

        // Bank 0 idle again but only ready later: still masked until then.
        b.finish_service(BankId::new(0), s.access_done + t.bus_burst);
        let ids: Vec<_> = b.schedulable(pending, 0).into_iter().collect();
        assert_eq!(ids, vec![BankId::new(2), BankId::new(3)]);
        let ready = s.access_done + t.bus_burst;
        let ids: Vec<_> = b.schedulable(pending, ready).into_iter().collect();
        assert_eq!(ids, vec![BankId::new(0), BankId::new(2), BankId::new(3)]);
    }
}
