//! One memory channel: banks + data bus + request buffer + accounting.

use crate::verify::ProtocolChecker;
use crate::{BankArray, BankSet, ChannelStats, DataBus, QueueFullError, RequestQueue};
use tcm_chaos::{ChannelChaos, FaultKind};
use tcm_telemetry::{RowOutcome, Telemetry, TraceEvent};
use tcm_types::{BankId, ChannelId, Cycle, DramTiming, InvariantViolation, Request, Row, RowState};

/// The full timing result of issuing one request to its bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// The serviced request.
    pub request: Request,
    /// Row-buffer state the request encountered at the bank.
    pub row_state: RowState,
    /// Cycle the bank began the access.
    pub bank_start: Cycle,
    /// Cycle the bank can begin its next access (row hits pipeline, so
    /// this can precede the data transfer's end).
    pub bank_free: Cycle,
    /// Cycle the data arrived back at the core (request completion).
    pub completes_at: Cycle,
    /// Memory service time charged to the thread: access phase plus data
    /// transfer (the paper's "cycles the banks were kept busy servicing
    /// its requests" — the unit of bandwidth usage and attained service).
    pub service_cycles: u64,
}

impl ServiceOutcome {
    /// Bank-busy cycles this request consumed (the paper's unit of
    /// memory service time / bandwidth usage).
    #[inline]
    pub fn bank_busy(&self) -> u64 {
        self.service_cycles
    }
}

/// One memory channel with an independent controller.
///
/// The channel owns the mechanical state (banks, bus, request buffer,
/// stats); the *policy* deciding which pending request to issue lives in
/// `tcm-sched` and is consulted by the simulator, which then calls
/// [`Channel::issue`] with the chosen position.
#[derive(Debug, Clone)]
pub struct Channel {
    id: ChannelId,
    banks: BankArray,
    bus: DataBus,
    queue: RequestQueue,
    stats: ChannelStats,
    /// Observation-only runtime protocol checker (always on in debug
    /// builds; opt-in in release via [`Channel::enable_verification`]).
    checker: Option<Box<ProtocolChecker>>,
    /// Injected-fault execution state (`None` in normal operation; see
    /// [`Channel::set_chaos`] and the `tcm-chaos` crate).
    chaos: Option<Box<ChannelChaos>>,
    /// Whether `chaos` holds at least one armed fault. A plan's fault
    /// list per channel is fixed for the run, so this is precomputed at
    /// install time: channels with an inert (empty) state skip the
    /// injection hooks entirely on the hot path, which is what makes an
    /// empty fault plan genuinely free.
    chaos_active: bool,
    /// Telemetry sink (disabled by default — one pointer test per hook;
    /// see [`Channel::set_telemetry`]).
    telemetry: Telemetry,
}

impl Channel {
    /// Creates a channel with `num_banks` banks and a request buffer of
    /// `buffer_capacity` entries. Stats assume up to 1024 threads; use
    /// [`Channel::with_threads`] to size exactly.
    pub fn new(id: ChannelId, num_banks: usize, buffer_capacity: usize) -> Self {
        Self::with_threads(id, num_banks, buffer_capacity, 1024)
    }

    /// Creates a channel sized for `num_threads` threads.
    pub fn with_threads(
        id: ChannelId,
        num_banks: usize,
        buffer_capacity: usize,
        num_threads: usize,
    ) -> Self {
        let mut channel = Self {
            id,
            banks: BankArray::new(num_banks),
            bus: DataBus::new(),
            queue: RequestQueue::new(buffer_capacity, num_banks),
            stats: ChannelStats::new(num_banks, num_threads),
            checker: None,
            chaos: None,
            chaos_active: false,
            telemetry: Telemetry::disabled(),
        };
        // Keep the timing model honest wherever tests run: the checker is
        // observation-only, so results are unaffected.
        if cfg!(debug_assertions) {
            channel.enable_verification();
        }
        channel
    }

    /// Turns on the runtime protocol checker (idempotent). The checker
    /// is pure observation: enabling it never changes simulation
    /// results, only whether violations are detected and reported.
    pub fn enable_verification(&mut self) {
        if self.checker.is_none() {
            self.checker = Some(Box::new(ProtocolChecker::new(self.id, self.banks.len())));
        }
    }

    /// Turns the runtime protocol checker off, discarding its state.
    pub fn disable_verification(&mut self) {
        self.checker = None;
    }

    /// Installs (or clears, with `None`) this channel's fault-injection
    /// state. An empty [`ChannelChaos`] is a strict no-op: the
    /// injection hooks are skipped outright (they could never mutate
    /// anything), so results stay bit-identical and the inert state is
    /// free.
    ///
    /// Detecting the injected faults is the checker's job — callers
    /// that want detections must also enable verification.
    pub fn set_chaos(&mut self, chaos: Option<ChannelChaos>) {
        self.chaos = chaos.map(Box::new);
        self.chaos_active = self.chaos.as_ref().is_some_and(|c| !c.is_empty());
    }

    /// Whether a fault-injection state is installed (possibly empty).
    pub fn chaos_installed(&self) -> bool {
        self.chaos.is_some()
    }

    /// Attaches a telemetry sink (a clone of the run's shared handle).
    /// Telemetry is observation-only: results are bit-identical with a
    /// sink attached or not.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    /// Whether the runtime protocol checker is active.
    pub fn verification_enabled(&self) -> bool {
        self.checker.is_some()
    }

    /// The protocol checker's state, when verification is enabled.
    pub fn checker(&self) -> Option<&ProtocolChecker> {
        self.checker.as_deref()
    }

    /// The first protocol violation observed on this channel, if any.
    pub fn violation(&self) -> Option<&InvariantViolation> {
        self.checker.as_ref().and_then(|c| c.violation())
    }

    /// End-of-run conservation check: verifies every admitted request
    /// was serviced exactly once or is still queued.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] observed during the run
    /// (including any conservation mismatch found by this call). A
    /// no-op returning `Ok(())` when verification is disabled.
    pub fn finish_verification(&mut self, now: Cycle) -> Result<(), InvariantViolation> {
        let Some(checker) = self.checker.as_mut() else {
            return Ok(());
        };
        checker.on_finish(self.queue.iter(), now);
        match checker.violation() {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    /// This channel's id.
    #[inline]
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// Number of banks.
    #[inline]
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The row currently open in `bank`'s row-buffer, if any.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn open_row(&self, bank: BankId) -> Option<Row> {
        self.banks.open_row(bank)
    }

    /// First cycle at which `bank` can begin a new access.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn bank_ready_at(&self, bank: BankId) -> Cycle {
        self.banks.ready_at(bank)
    }

    /// Whether `bank` is currently servicing a request.
    #[inline]
    pub fn bank_busy(&self, bank: BankId) -> bool {
        self.banks.is_busy(bank)
    }

    /// Whether `bank` is idle and past its ready cycle at `now` — i.e.
    /// it could accept an issue this cycle if work were pending.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn bank_idle_ready(&self, bank: BankId, now: Cycle) -> bool {
        !self.banks.is_busy(bank) && self.banks.ready_at(bank) <= now
    }

    /// Number of banks currently servicing a request.
    #[inline]
    pub fn busy_bank_count(&self) -> usize {
        self.banks.busy_count()
    }

    /// The request buffer.
    #[inline]
    pub fn queue(&self) -> &RequestQueue {
        &self.queue
    }

    /// Accumulated service statistics.
    #[inline]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Enqueues a request into the controller's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the buffer is full.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the request is addressed to a different
    /// channel.
    pub fn enqueue(&mut self, request: Request) -> Result<(), QueueFullError> {
        debug_assert_eq!(request.addr.channel, self.id, "request routed to wrong channel");
        self.queue.push(request)?;
        self.stats.observe_queue_depth(self.queue.len());
        if let Some(checker) = self.checker.as_mut() {
            checker.on_admit(&request, request.issued_at);
        }
        if self.chaos_active {
            self.inject_admission_faults(&request);
        }
        Ok(())
    }

    /// Chaos hooks on the admission path: duplicate or silently drop
    /// the request that was just admitted. Each fault fires at most
    /// once; without an armed fault this never mutates anything.
    fn inject_admission_faults(&mut self, request: &Request) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        let now = request.issued_at;
        if chaos.due(FaultKind::DuplicateRequest, now) {
            // Admit the same request a second time: the conservation
            // checker sees the id admitted twice.
            if self.queue.push(*request).is_ok() {
                chaos.fire(FaultKind::DuplicateRequest, now);
                if let Some(checker) = self.checker.as_mut() {
                    checker.on_admit(request, now);
                }
                self.telemetry.emit(|| TraceEvent::ChaosInjected {
                    cycle: now,
                    kind: FaultKind::DuplicateRequest,
                });
            }
        } else if chaos.fire(FaultKind::DropRequest, now) {
            // Lose the request after admission: its data never returns,
            // and end-of-run conservation accounting comes up short.
            let _ = self.queue.remove(request.id);
            self.telemetry.emit(|| TraceEvent::ChaosInjected {
                cycle: now,
                kind: FaultKind::DropRequest,
            });
        }
    }

    /// Requests currently pending for `bank`, in arrival order, as a
    /// borrowed slice; positions index into [`Channel::issue`]. Takes
    /// `&mut self` for parity with the flat reference queue (see
    /// [`RequestQueue::pending_for_bank`]); no state a caller can see is
    /// modified.
    pub fn pending_for_bank(&mut self, bank: BankId) -> &[Request] {
        self.queue.pending_for_bank(bank)
    }

    /// Banks that are idle *and* have at least one pending request at
    /// cycle `now` — the banks for which a scheduling decision is due.
    /// One batched mask kernel (see [`BankArray::schedulable`]); the
    /// iterator yields ascending bank ids, allocation-free.
    pub fn schedulable_banks(&self, now: Cycle) -> impl Iterator<Item = BankId> + '_ {
        self.schedulable_bank_set(now).into_iter()
    }

    /// The batched form of [`Channel::schedulable_banks`]: the whole
    /// answer as one bank set.
    #[inline]
    pub fn schedulable_bank_set(&self, now: Cycle) -> BankSet {
        self.banks.schedulable(self.queue.banks_with_pending(), now)
    }

    /// Issues the `pos`-th pending request of its bank (position as
    /// returned by [`Channel::pending_for_bank`]) at cycle `now`.
    ///
    /// Computes the complete timing: bank access phase (row-state
    /// dependent), data-bus arbitration, and core round-trip; updates the
    /// bank's open row, the bus reservation and the channel statistics;
    /// removes the request from the buffer.
    ///
    /// # Panics
    ///
    /// Panics if no such pending request exists or the bank is busy —
    /// both indicate a scheduling-driver bug.
    pub fn issue(&mut self, bank_index: usize, pos: usize, timing: &DramTiming) -> ServiceOutcome {
        let ready = self.banks.ready_at(BankId::new(bank_index));
        self.issue_at(bank_index, pos, ready, timing)
    }

    /// Like [`Channel::issue`] but with an explicit schedule cycle `now`
    /// (the access starts at `max(now, bank ready)`).
    ///
    /// # Panics
    ///
    /// Panics if no such pending request exists or the bank is busy.
    pub fn issue_at(
        &mut self,
        bank_index: usize,
        pos: usize,
        now: Cycle,
        timing: &DramTiming,
    ) -> ServiceOutcome {
        let bank_id = BankId::new(bank_index);
        let request = self
            .queue
            .take_for_bank(bank_id, pos)
            .expect("scheduler picked a request position that does not exist");
        let service = self.banks.begin_service(bank_id, request.addr.row, now, timing);
        let (_, bus_end) = self.bus.reserve(service.access_done, timing.bus_burst);
        // The bank is held until its data has left on the bus, for every
        // row-buffer state. (Deliberately not modeling CAS pipelining:
        // the paper's own 200-cycle row-hit round trip implies hits are
        // latency-bound, and making hits bus-rate here would inflate
        // streaming threads' alone-run IPC — and therefore their
        // apparent slowdowns — by ~4x relative to the paper's model.)
        let bank_ready = bus_end;
        self.banks.finish_service(bank_id, bank_ready);
        let completes_at = bus_end + timing.fixed_overhead;
        let mut outcome = ServiceOutcome {
            request,
            row_state: service.row_state,
            bank_start: service.start,
            bank_free: bank_ready,
            completes_at,
            service_cycles: timing.access_phase(service.row_state) + timing.bus_burst,
        };
        if self.chaos_active {
            self.inject_service_faults(&mut outcome, timing, now);
        }
        self.stats.record(
            bank_index,
            request.thread,
            outcome.row_state,
            outcome.bank_busy(),
            timing.bus_burst,
            outcome.completes_at,
        );
        if let Some(checker) = self.checker.as_mut() {
            checker.on_issue(&outcome, timing, now);
        }
        if self.telemetry.is_enabled() {
            self.trace_service(&outcome, bank_index);
        }
        outcome
    }

    /// Emits the trace events for one serviced request: the implied
    /// bank commands (precharge on a conflict, activate whenever the
    /// needed row was not open) and the service itself.
    fn trace_service(&self, outcome: &ServiceOutcome, bank: usize) {
        let channel = self.id.index();
        let row_outcome = match outcome.row_state {
            RowState::Hit => RowOutcome::Hit,
            RowState::Closed => RowOutcome::Closed,
            RowState::Conflict => RowOutcome::Conflict,
        };
        let cycle = outcome.bank_start;
        if row_outcome == RowOutcome::Conflict {
            self.telemetry
                .emit(|| TraceEvent::BankPrecharge { cycle, channel, bank });
        }
        if row_outcome != RowOutcome::Hit {
            self.telemetry.emit(|| TraceEvent::BankActivate {
                cycle,
                channel,
                bank,
                row: outcome.request.addr.row.index(),
            });
        }
        self.telemetry.emit(|| TraceEvent::RequestServiced {
            cycle,
            thread: outcome.request.thread.index(),
            channel,
            bank,
            outcome: row_outcome,
        });
    }

    /// Chaos hooks on the service path, applied between computing the
    /// legal [`ServiceOutcome`] and reporting it to stats/checker. Each
    /// fault corrupts the outcome in a way its matching invariant
    /// detector observes; without armed faults the outcome is untouched.
    fn inject_service_faults(&mut self, outcome: &mut ServiceOutcome, timing: &DramTiming, now: Cycle) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        if chaos.fire(FaultKind::TimingViolation, now) {
            // Report a service shorter than the row state allows — as if
            // the column access skipped the tRCD activation wait.
            outcome.service_cycles = outcome.service_cycles.saturating_sub(timing.rcd.max(1));
            self.telemetry.emit(|| TraceEvent::ChaosInjected {
                cycle: now,
                kind: FaultKind::TimingViolation,
            });
        }
        if chaos.fire(FaultKind::RowCorruption, now) {
            // Misreport the row-buffer state; the checker's shadow row
            // buffer disagrees.
            outcome.row_state = match outcome.row_state {
                RowState::Hit => RowState::Conflict,
                RowState::Closed | RowState::Conflict => RowState::Hit,
            };
            self.telemetry.emit(|| TraceEvent::ChaosInjected {
                cycle: now,
                kind: FaultKind::RowCorruption,
            });
        }
        if chaos.due(FaultKind::BusOverlap, now) {
            // Re-time the transfer so it starts one cycle before the
            // previous transfer released the bus. Only sound once the
            // bank's access phase is done before that point — otherwise
            // the access-phase check would fire first and misclassify
            // the fault — so stay armed until an eligible issue arrives.
            let access_done = outcome.bank_start + timing.access_phase(outcome.row_state);
            let prev_end = chaos.last_bus_end();
            if prev_end > access_done {
                chaos.fire(FaultKind::BusOverlap, now);
                let bus_start = prev_end - 1;
                outcome.completes_at = bus_start + timing.bus_burst + timing.fixed_overhead;
                self.telemetry.emit(|| TraceEvent::ChaosInjected {
                    cycle: now,
                    kind: FaultKind::BusOverlap,
                });
            }
        }
        // Track bus occupancy exactly as the checker reconstructs it, so
        // the overlap fault above knows when the bus is genuinely busy.
        chaos.observe_bus(outcome.completes_at.saturating_sub(timing.fixed_overhead));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{MemAddress, RequestId, Row, ThreadId};

    fn req(id: u64, thread: usize, bank: usize, row: usize, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(0), BankId::new(bank), Row::new(row)),
            at,
        )
    }

    fn channel() -> Channel {
        Channel::with_threads(ChannelId::new(0), 4, 128, 4)
    }

    #[test]
    fn single_request_round_trip_matches_timing() {
        let t = DramTiming::ddr2_800();
        let mut ch = channel();
        ch.enqueue(req(0, 0, 1, 42, 0)).unwrap();
        let out = ch.issue_at(1, 0, 0, &t);
        assert_eq!(out.row_state, RowState::Closed);
        assert_eq!(out.completes_at, t.round_trip(RowState::Closed));
        assert_eq!(out.bank_busy(), t.rcd + t.cl + t.bus_burst);
        assert!(ch.queue().is_empty());
        assert_eq!(ch.stats().total_serviced(), 1);
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let t = DramTiming::ddr2_800();
        let mut ch = channel();
        ch.enqueue(req(0, 0, 0, 5, 0)).unwrap();
        ch.enqueue(req(1, 0, 0, 5, 0)).unwrap();
        ch.enqueue(req(2, 0, 0, 9, 0)).unwrap();
        let o1 = ch.issue_at(0, 0, 0, &t);
        let o2 = ch.issue_at(0, 0, o1.bank_free, &t);
        let o3 = ch.issue_at(0, 0, o2.bank_free, &t);
        assert_eq!(o2.row_state, RowState::Hit);
        assert_eq!(o3.row_state, RowState::Conflict);
        let hit_time = o2.completes_at - o2.bank_start;
        let conflict_time = o3.completes_at - o3.bank_start;
        assert!(hit_time < conflict_time);
    }

    #[test]
    fn bus_serializes_concurrent_banks() {
        let t = DramTiming::ddr2_800();
        let mut ch = channel();
        ch.enqueue(req(0, 0, 0, 1, 0)).unwrap();
        ch.enqueue(req(1, 0, 1, 1, 0)).unwrap();
        let o1 = ch.issue_at(0, 0, 0, &t);
        let o2 = ch.issue_at(1, 0, 0, &t);
        // Both banks finish the access phase at the same cycle; the second
        // transfer must wait for the bus.
        assert_eq!(o2.completes_at, o1.completes_at + t.bus_burst);
    }

    #[test]
    fn schedulable_banks_requires_idle_and_pending() {
        let t = DramTiming::ddr2_800();
        let mut ch = channel();
        ch.enqueue(req(0, 0, 0, 1, 0)).unwrap();
        ch.enqueue(req(1, 0, 2, 1, 0)).unwrap();
        assert_eq!(
            ch.schedulable_banks(0).collect::<Vec<_>>(),
            vec![BankId::new(0), BankId::new(2)]
        );
        let out = ch.issue_at(0, 0, 0, &t);
        // Bank 0 has no pending request now; bank 2 still does.
        assert_eq!(
            ch.schedulable_banks(0).collect::<Vec<_>>(),
            vec![BankId::new(2)]
        );
        // A new request for bank 0 only becomes schedulable once the bank
        // frees up.
        ch.enqueue(req(2, 0, 0, 1, 0)).unwrap();
        assert_eq!(
            ch.schedulable_banks(0).collect::<Vec<_>>(),
            vec![BankId::new(2)]
        );
        assert_eq!(
            ch.schedulable_banks(out.bank_free).collect::<Vec<_>>(),
            vec![BankId::new(0), BankId::new(2)]
        );
    }

    #[test]
    fn per_thread_service_time_accumulates() {
        let t = DramTiming::ddr2_800();
        let mut ch = channel();
        ch.enqueue(req(0, 0, 0, 1, 0)).unwrap();
        ch.enqueue(req(1, 1, 1, 1, 0)).unwrap();
        let o1 = ch.issue_at(0, 0, 0, &t);
        let o2 = ch.issue_at(1, 0, 0, &t);
        assert_eq!(ch.stats().thread_service(ThreadId::new(0)), o1.bank_busy());
        assert_eq!(ch.stats().thread_service(ThreadId::new(1)), o2.bank_busy());
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn issuing_nonexistent_position_panics() {
        let t = DramTiming::ddr2_800();
        let mut ch = channel();
        ch.issue_at(0, 0, 0, &t);
    }
}
