//! Experiment scaling knobs.

use tcm_types::Cycle;

/// How big to run the experiments.
///
/// The paper simulates 100 M cycles per run and 32 workloads per
/// intensity category; the defaults here (20 M / 8) reproduce the same
/// shapes at laptop scale. Set `TCM_FULL=1` for paper scale, or override
/// the individual knobs with `TCM_CYCLES` / `TCM_WORKLOADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Cycles simulated per run.
    pub horizon: Cycle,
    /// Workloads per intensity category.
    pub workloads_per_category: usize,
    /// Hardware threads (cores).
    pub threads: usize,
}

impl Scale {
    /// Reads the scale from the environment (see crate docs).
    pub fn from_env() -> Self {
        let full = std::env::var("TCM_FULL").map(|v| v == "1").unwrap_or(false);
        let horizon = std::env::var("TCM_CYCLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 100_000_000 } else { 20_000_000 });
        let workloads_per_category = std::env::var("TCM_WORKLOADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 32 } else { 8 });
        Self {
            horizon,
            workloads_per_category,
            threads: 24,
        }
    }

    /// A tiny scale for unit tests and Criterion kernels.
    pub fn smoke() -> Self {
        Self {
            horizon: 2_000_000,
            workloads_per_category: 2,
            threads: 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_laptop_scale() {
        // Environment-dependent, but the smoke scale is fixed.
        let s = Scale::smoke();
        assert_eq!(s.horizon, 2_000_000);
        assert_eq!(s.threads, 24);
    }
}
