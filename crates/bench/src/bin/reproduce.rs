//! Runs every experiment of the paper (all figures and tables) and writes
//! the combined report to `experiments_output.md` in the current
//! directory, in the format EXPERIMENTS.md records.
//!
//! Experiments share one [`tcm_sim::Session`] (alone IPCs computed once)
//! and execute their grids as sharded sweeps; the trailing engine line
//! reports cells simulated, worker count, and sim-cycles/sec.
//!
//! Scale via TCM_CYCLES / TCM_WORKLOADS / TCM_FULL=1.

use std::io::Write;
use tcm_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    let session = experiments::baseline_session(&scale);
    let mut out = String::new();
    out.push_str(&format!(
        "# TCM reproduction — experiment outputs\n\nScale: {} cycles per run, {} workloads \
         per intensity category, {} threads.\n\n",
        scale.horizon, scale.workloads_per_category, scale.threads
    ));
    let t0 = std::time::Instant::now();
    let reports = [
        experiments::fig1(&scale, &session),
        experiments::fig2(&scale),
        experiments::fig3(),
        experiments::fig4(&scale, &session),
        experiments::fig5(&scale, &session),
        experiments::fig6(&scale, &session),
        experiments::fig7(&scale, &session),
        experiments::fig8(&scale, &session),
        experiments::table2(),
        experiments::table4(),
        experiments::table6(&scale, &session),
        experiments::table7(&scale, &session),
        experiments::table8(&scale),
        experiments::ablation(&scale, &session),
    ];
    for report in &reports {
        let rendered = report.render();
        println!("{rendered}");
        out.push_str(&rendered);
        out.push('\n');
    }
    let engine = session.stats_line();
    println!("{engine}");
    out.push_str(&format!("\n{engine}\nTotal wall time: {:?}\n", t0.elapsed()));
    let mut file = std::fs::File::create("experiments_output.md").expect("writable cwd");
    file.write_all(out.as_bytes()).expect("write report");
    eprintln!("{engine}");
    eprintln!("wrote experiments_output.md in {:?}", t0.elapsed());
}
