//! Runs every experiment of the paper (all figures and tables) and writes
//! the combined report to `experiments_output.md` in the current
//! directory, in the format EXPERIMENTS.md records.
//!
//! Scale via TCM_CYCLES / TCM_WORKLOADS / TCM_FULL=1.

use std::io::Write;
use tcm_bench::{experiments, Scale};
use tcm_sim::AloneCache;

fn main() {
    let scale = Scale::from_env();
    let mut alone = AloneCache::new();
    let mut out = String::new();
    out.push_str(&format!(
        "# TCM reproduction — experiment outputs\n\nScale: {} cycles per run, {} workloads \
         per intensity category, {} threads.\n\n",
        scale.horizon, scale.workloads_per_category, scale.threads
    ));
    let t0 = std::time::Instant::now();
    let reports = [
        experiments::fig1(&scale, &mut alone),
        experiments::fig2(&scale),
        experiments::fig3(),
        experiments::fig4(&scale, &mut alone),
        experiments::fig5(&scale, &mut alone),
        experiments::fig6(&scale, &mut alone),
        experiments::fig7(&scale, &mut alone),
        experiments::fig8(&scale, &mut alone),
        experiments::table2(),
        experiments::table4(),
        experiments::table6(&scale, &mut alone),
        experiments::table7(&scale, &mut alone),
        experiments::table8(&scale),
        experiments::ablation(&scale, &mut alone),
    ];
    for report in &reports {
        let rendered = report.render();
        println!("{rendered}");
        out.push_str(&rendered);
        out.push('\n');
    }
    out.push_str(&format!("\nTotal wall time: {:?}\n", t0.elapsed()));
    let mut file = std::fs::File::create("experiments_output.md").expect("writable cwd");
    file.write_all(out.as_bytes()).expect("write report");
    eprintln!("wrote experiments_output.md in {:?}", t0.elapsed());
}
