//! Ablation study (beyond the paper): contribution of TCM's clustering
//! and shuffling mechanisms, plus the FQM extension baseline.

use tcm_bench::{experiments, Scale};
use tcm_sim::AloneCache;

fn main() {
    let scale = Scale::from_env();
    let mut alone = AloneCache::new();
    println!("{}", experiments::ablation(&scale, &mut alone).render());
}
