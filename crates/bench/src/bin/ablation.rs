//! Ablation study (beyond the paper): contribution of TCM's clustering
//! and shuffling mechanisms, plus the FQM extension baseline.

use tcm_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    let session = experiments::baseline_session(&scale);
    println!("{}", experiments::ablation(&scale, &session).render());
}
