//! Regenerates the paper's Table 4 (benchmark characteristics), verifying
//! the trace generators' calibration.

use tcm_bench::experiments;

fn main() {
    println!("{}", experiments::table4().render());
}
