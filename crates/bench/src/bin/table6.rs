//! Regenerates the paper's table6. Scale via TCM_CYCLES / TCM_WORKLOADS /
//! TCM_FULL=1 (see tcm-bench crate docs).

use tcm_bench::{experiments, Scale};
use tcm_sim::AloneCache;

fn main() {
    let scale = Scale::from_env();
    let mut alone = AloneCache::new();
    println!("{}", experiments::table6(&scale, &mut alone).render());
}
