//! Regenerates the paper's table6. Scale via TCM_CYCLES / TCM_WORKLOADS /
//! TCM_FULL=1 (see tcm-bench crate docs).

use tcm_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    let session = experiments::baseline_session(&scale);
    println!("{}", experiments::table6(&scale, &session).render());
}
