//! Regenerates the paper's Table 8 (TCM vs ATLAS across system
//! configurations). Scale via TCM_CYCLES / TCM_WORKLOADS / TCM_FULL=1.

use tcm_bench::{experiments, Scale};

fn main() {
    println!("{}", experiments::table8(&Scale::from_env()).render());
}
