//! Regenerates the paper's Table 2 (storage cost) and prints the Table 3
//! baseline configuration.

use tcm_bench::experiments;

fn main() {
    println!("{}", experiments::table2().render());
}
