//! Regenerates the paper's Figure 3 (shuffling visualization).

use tcm_bench::experiments;

fn main() {
    println!("{}", experiments::fig3().render());
}
