//! Regenerates the paper's Figure 2 / Table 1 (random-access vs
//! streaming under strict prioritization).

use tcm_bench::{experiments, Scale};

fn main() {
    println!("{}", experiments::fig2(&Scale::from_env()).render());
}
