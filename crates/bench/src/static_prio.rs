//! A strict static-priority policy, used by the Figure 2 experiment.

use tcm_sched::select::{age_key, pick_max_by_key, row_hit};
use tcm_sched::{PickContext, Scheduler};
use tcm_types::{Request, ThreadId};

/// Strictly prioritizes one thread over all others (then row-hit, then
/// age) — the scheduling policy behind the paper's Figure 2 motivation
/// experiment, which strictly prioritizes either the random-access or
/// the streaming microbenchmark thread.
#[derive(Debug, Clone, Copy)]
pub struct StaticPriority {
    top: ThreadId,
}

impl StaticPriority {
    /// Creates the policy with `top` as the always-preferred thread.
    pub fn new(top: ThreadId) -> Self {
        Self { top }
    }
}

impl Scheduler for StaticPriority {
    fn name(&self) -> &'static str {
        "static-priority"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        pick_max_by_key(pending, |r| {
            (r.thread == self.top, row_hit(r, ctx.open_row), age_key(r))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcm_types::{BankId, ChannelId, MemAddress, RequestId, Row};

    #[test]
    fn top_thread_always_wins() {
        let mut s = StaticPriority::new(ThreadId::new(1));
        let addr = |row| MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(row));
        let pending = vec![
            Request::new(RequestId::new(0), ThreadId::new(0), addr(9), 0),
            Request::new(RequestId::new(1), ThreadId::new(1), addr(1), 100),
        ];
        let ctx = PickContext {
            now: 200,
            channel: ChannelId::new(0),
            bank: BankId::new(0),
            open_row: Some(Row::new(9)),
        };
        // Thread 0 has the row hit and the age, but thread 1 is static top.
        assert_eq!(s.pick(&pending, &ctx), 1);
    }
}
