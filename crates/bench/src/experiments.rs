//! One driver per table/figure of the paper.
//!
//! Every function renders a plain-text report (printed by the
//! corresponding `src/bin/*` binary and collected by `reproduce` into
//! EXPERIMENTS.md input). Functions share a [`Session`] so the expensive
//! alone-run IPCs are computed once per scale, and run their experiment
//! grids through the `Sweep` layer — sharded across worker threads with
//! bit-identical results to a serial run.

use crate::{Scale, StaticPriority};
use tcm_core::storage::StorageModel;
use tcm_core::{InsertionShuffler, InsertionVariant, RoundRobinShuffler, ShuffleMode, TcmParams};
use tcm_sched::{AtlasParams, ParBsParams, StfmParams};
use tcm_sim::report::{f2, f3, pct_change, Table};
use tcm_sim::{mean, variance, PolicyKind, RunConfig, Session, System, WorkloadMetrics};
use tcm_types::{SystemConfig, ThreadId};
use tcm_workload::{
    random_workload, spec2006, spec_by_name, table5_workloads, workload_suite, BenchmarkProfile,
    MachineShape, TraceGenerator, WorkloadSpec,
};

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id and title (e.g. `"Figure 4 — ..."`).
    pub title: String,
    /// Rendered body.
    pub body: String,
}

impl Report {
    fn new(title: impl Into<String>, body: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            body: body.into(),
        }
    }

    /// Renders title + body.
    pub fn render(&self) -> String {
        format!("## {}\n\n{}\n", self.title, self.body)
    }
}

/// The shared session every baseline-machine experiment runs in: the
/// paper-baseline system at `scale`'s horizon.
pub fn baseline_session(scale: &Scale) -> Session {
    Session::new(RunConfig::builder().horizon(scale.horizon).build())
}

/// Renders the paper's WS-vs-maxSD scatter geometry for a set of
/// per-policy averages (first letter of each label as the marker).
fn lineup_scatter(averages: &[(String, WorkloadMetrics)]) -> String {
    let mut plot = tcm_sim::scatter::Scatter::new("WS", "maxSD", 48, 14);
    let mut legend = Vec::new();
    for (label, m) in averages {
        let marker = label.chars().next().unwrap_or('?');
        plot.point(marker, m.weighted_speedup, m.max_slowdown);
        legend.push(format!("{marker}={label}"));
    }
    format!("{}\nlegend: {}\n", plot.render(), legend.join("  "))
}

/// Runs every policy on every workload (one sharded sweep) and renders
/// an averaged comparison table; returns the per-policy averages
/// alongside.
fn lineup_comparison(
    kinds: &[PolicyKind],
    workloads: &[WorkloadSpec],
    session: &Session,
) -> (Table, Vec<(String, WorkloadMetrics)>) {
    let result = session
        .sweep()
        .policies(kinds.iter().cloned())
        .workloads(workloads.iter().cloned())
        .run_auto();
    let averages = result.averages();
    let mut table = Table::new(vec!["policy", "WS", "maxSD", "HS"]);
    for (label, avg) in &averages {
        table.row(vec![
            label.clone(),
            f2(avg.weighted_speedup),
            f2(avg.max_slowdown),
            f3(avg.harmonic_speedup),
        ]);
    }
    (table, averages)
}

/// Figure 1: fairness vs throughput of the four baselines, averaged over
/// the 50/75/100 %-intensity workload suite.
pub fn fig1(scale: &Scale, session: &Session) -> Report {
    let suite = workload_suite(&[0.5, 0.75, 1.0], scale.workloads_per_category, scale.threads);
    let kinds = [
        PolicyKind::FrFcfs,
        PolicyKind::Stfm(StfmParams::paper_default()),
        PolicyKind::ParBs(ParBsParams::paper_default()),
        PolicyKind::Atlas(AtlasParams::paper_default()),
    ];
    let (table, averages) = lineup_comparison(&kinds, &suite, session);
    Report::new(
        "Figure 1 — Performance and fairness of state-of-the-art schedulers",
        format!(
            "{} workloads x {} cycles; the ideal point is high WS, low maxSD.\n\n{}\n{}",
            suite.len(),
            session.run_config().horizon,
            table.render(),
            lineup_scatter(&averages),
        ),
    )
}

/// Figure 2 / Table 1: the random-access vs streaming prioritization
/// experiment.
pub fn fig2(scale: &Scale) -> Report {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_threads = 2;
    let session = Session::new(
        RunConfig::builder()
            .system(cfg.clone())
            .horizon(scale.horizon.min(20_000_000))
            .build(),
    );
    let random = BenchmarkProfile::random_access();
    let streaming = BenchmarkProfile::streaming();
    let alone_random = session.alone_ipc(&random);
    let alone_streaming = session.alone_ipc(&streaming);
    let workload = WorkloadSpec::new("fig2", vec![random.clone(), streaming.clone()]);

    let mut table = Table::new(vec!["prioritized", "random-access SD", "streaming SD"]);
    let mut slowdowns = Vec::new();
    for top in [0usize, 1] {
        let policy = StaticPriority::new(ThreadId::new(top));
        let mut sys = System::new(&cfg, &workload, Box::new(policy), 5);
        let run = sys.run(session.run_config().horizon);
        let sd = (alone_random / run.ipc[0], alone_streaming / run.ipc[1]);
        slowdowns.push(sd);
        table.row(vec![
            if top == 0 { "random-access" } else { "streaming" }.into(),
            f2(sd.0),
            f2(sd.1),
        ]);
    }
    let shape_holds = slowdowns[1].0 > slowdowns[0].1;
    Report::new(
        "Figure 2 / Table 1 — Vulnerability to interference",
        format!(
            "Microbenchmarks: {random}\n                 {streaming}\n\n{}\nShape check (deprioritized random-access suffers more than \
             deprioritized streaming): {}\n",
            table.render(),
            if shape_holds { "HOLDS" } else { "VIOLATED" }
        ),
    )
}

/// Figure 3: the round-robin vs insertion shuffle permutation diagram.
pub fn fig3() -> Report {
    let n = 4;
    // Thread i has niceness i: thread 3 nicest, thread 0 least nice.
    let entries: Vec<(ThreadId, i64)> = (0..n).map(|i| (ThreadId::new(i), i as i64)).collect();
    let mut printed = InsertionShuffler::with_variant(entries.clone(), InsertionVariant::Printed);
    let mut suffix = InsertionShuffler::with_variant(entries, InsertionVariant::SuffixRestore);
    let mut rr = RoundRobinShuffler::new((0..n).map(ThreadId::new).collect());
    let mut body = String::from(
        "4 threads; N3 = nicest ... N0 = least nice. Columns are shuffle\n\
         intervals; rows are priority levels (top row = highest).\n\n",
    );
    let period = 2 * n;
    let mut printed_states = Vec::new();
    let mut suffix_states = Vec::new();
    let mut rr_states = Vec::new();
    for _ in 0..period {
        printed_states.push(printed.ranking_vec());
        suffix_states.push(suffix.ranking_vec());
        rr_states.push(rr.ranking().to_vec());
        printed.advance();
        suffix.advance();
        rr.advance();
    }
    for (label, states) in [
        ("(a) round-robin", &rr_states),
        ("(b) insertion, suffix-restore reading (matches Fig. 3b prose)", &suffix_states),
        ("(c) insertion, literal printed pseudocode", &printed_states),
    ] {
        body.push_str(label);
        body.push('\n');
        for level in (0..n).rev() {
            let cells: Vec<String> = states
                .iter()
                .map(|s| format!("N{}", s[level].index()))
                .collect();
            body.push_str(&format!("  prio {}: {}\n", level + 1, cells.join(" ")));
        }
        body.push('\n');
    }
    body.push_str(
        "In (b) the least nice thread (N0) sits at the bottom almost always\n\
         while every thread still reaches the top - the behavior the paper's\n\
         prose describes. In (c), the literal pseudocode, N0 alternates\n\
         between the extremes. See DESIGN.md for the discrepancy analysis.\n",
    );
    Report::new("Figure 3 — Shuffling algorithm visualization", body)
}

/// Figure 4 (headline): TCM vs all four baselines over the workload
/// suite, with the paper's percentage comparisons.
pub fn fig4(scale: &Scale, session: &Session) -> Report {
    let suite = workload_suite(&[0.5, 0.75, 1.0], scale.workloads_per_category, scale.threads);
    let kinds = PolicyKind::paper_lineup(scale.threads);
    let (table, averages) = lineup_comparison(&kinds, &suite, session);
    let get = |label: &str| {
        averages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| *m)
            .expect("policy present")
    };
    let tcm = get("TCM");
    let atlas = get("ATLAS");
    let parbs = get("PAR-BS");
    let stfm = get("STFM");
    let frfcfs = get("FR-FCFS");
    let vs = |name: &str, other: WorkloadMetrics| {
        format!(
            "vs {name}: WS {} / maxSD {}\n",
            pct_change(tcm.weighted_speedup, other.weighted_speedup),
            pct_change(tcm.max_slowdown, other.max_slowdown),
        )
    };
    Report::new(
        "Figure 4 — TCM vs previous schedulers (headline result)",
        format!(
            "{} workloads x {} cycles.\n\n{}\n{}\nTCM {}TCM {}TCM {}TCM {}\
             \nPaper reference: TCM vs ATLAS WS +4.6% / maxSD -38.6%;\n\
             TCM vs PAR-BS WS +7.6% / maxSD -4.6%.\n",
            suite.len(),
            session.run_config().horizon,
            table.render(),
            lineup_scatter(&averages),
            vs("ATLAS", atlas),
            vs("PAR-BS", parbs),
            vs("STFM", stfm),
            vs("FR-FCFS", frfcfs),
        ),
    )
}

/// Figure 5: per-workload results for the paper's Table 5 workloads A–D.
pub fn fig5(scale: &Scale, session: &Session) -> Report {
    let kinds = PolicyKind::paper_lineup(scale.threads);
    let workloads = table5_workloads();
    let result = session
        .sweep()
        .policies(kinds.iter().cloned())
        .workloads(workloads.iter().cloned())
        .run_auto();
    let mut ws_table = Table::new(vec!["workload", "FR-FCFS", "STFM", "PAR-BS", "ATLAS", "TCM"]);
    let mut ms_table = Table::new(vec!["workload", "FR-FCFS", "STFM", "PAR-BS", "ATLAS", "TCM"]);
    for (w, workload) in workloads.iter().enumerate() {
        let mut ws_row = vec![workload.name.clone()];
        let mut ms_row = vec![workload.name.clone()];
        for k in 0..kinds.len() {
            let m = result.get(k, w, 0).metrics;
            ws_row.push(f2(m.weighted_speedup));
            ms_row.push(f2(m.max_slowdown));
        }
        ws_table.row(ws_row);
        ms_table.row(ms_row);
    }
    let mut avg_ws = vec!["AVG".to_string()];
    let mut avg_ms = vec!["AVG".to_string()];
    for k in 0..kinds.len() {
        let avg = result.policy_average(k);
        avg_ws.push(f2(avg.weighted_speedup));
        avg_ms.push(f2(avg.max_slowdown));
    }
    ws_table.row(avg_ws);
    ms_table.row(avg_ms);
    Report::new(
        "Figure 5 — Individual workloads A–D (Table 5)",
        format!(
            "(a) weighted speedup\n{}\n(b) maximum slowdown\n{}",
            ws_table.render(),
            ms_table.render()
        ),
    )
}

/// Figure 6: the performance–fairness trade-off as each algorithm's most
/// salient parameter is swept (50 %-intensity workloads).
pub fn fig6(scale: &Scale, session: &Session) -> Report {
    let suite = workload_suite(&[0.5], scale.workloads_per_category, scale.threads);

    // One row per parameter setting; all settings run as a single sweep.
    let mut variants: Vec<(String, String, PolicyKind)> = Vec::new();
    for k in 2..=6u32 {
        let params = TcmParams::reproduction_default(scale.threads)
            .with_cluster_thresh(k as f64 / scale.threads as f64);
        variants.push((
            "TCM".into(),
            format!("ClusterThresh {k}/{}", scale.threads),
            PolicyKind::Tcm(params),
        ));
    }
    for quantum in [1_000u64, 100_000, 1_000_000, 10_000_000, 20_000_000] {
        variants.push((
            "ATLAS".into(),
            format!("Quantum {quantum}"),
            PolicyKind::Atlas(AtlasParams::with_quantum(quantum)),
        ));
    }
    for cap in [1usize, 2, 5, 8, 10] {
        variants.push((
            "PAR-BS".into(),
            format!("BatchCap {cap}"),
            PolicyKind::ParBs(ParBsParams { batch_cap: cap }),
        ));
    }
    for thresh in [1.0f64, 1.1, 2.0, 5.0] {
        variants.push((
            "STFM".into(),
            format!("FairnessThreshold {thresh}"),
            PolicyKind::Stfm(StfmParams {
                fairness_threshold: thresh,
                ..StfmParams::paper_default()
            }),
        ));
    }
    variants.push(("FR-FCFS".into(), "(none)".into(), PolicyKind::FrFcfs));

    let result = session
        .sweep()
        .policies(variants.iter().map(|(_, _, kind)| kind.clone()))
        .workloads(suite.iter().cloned())
        .run_auto();
    let mut table = Table::new(vec!["policy", "parameter", "WS", "maxSD", "HS"]);
    for (i, (label, param, _)) in variants.iter().enumerate() {
        let avg = result.policy_average(i);
        table.row(vec![
            label.clone(),
            param.clone(),
            f2(avg.weighted_speedup),
            f2(avg.max_slowdown),
            f3(avg.harmonic_speedup),
        ]);
    }
    Report::new(
        "Figure 6 — Performance-fairness trade-off under parameter sweeps",
        format!(
            "{} 50%-intensity workloads x {} cycles. TCM's ClusterThresh should\n\
             trace a smooth WS/maxSD frontier; the baselines should move little.\n\n{}",
            suite.len(),
            session.run_config().horizon,
            table.render()
        ),
    )
}

/// Figure 7: effect of workload memory intensity (25/50/75/100 %).
pub fn fig7(scale: &Scale, session: &Session) -> Report {
    let kinds = PolicyKind::paper_lineup(scale.threads);
    let mut ws_table = Table::new(vec!["intensity", "FR-FCFS", "STFM", "PAR-BS", "ATLAS", "TCM"]);
    let mut ms_table = Table::new(vec!["intensity", "FR-FCFS", "STFM", "PAR-BS", "ATLAS", "TCM"]);
    for intensity in [0.25, 0.5, 0.75, 1.0] {
        let suite = workload_suite(&[intensity], scale.workloads_per_category, scale.threads);
        let result = session
            .sweep()
            .policies(kinds.iter().cloned())
            .workloads(suite)
            .run_auto();
        let mut ws_row = vec![format!("{:.0}%", intensity * 100.0)];
        let mut ms_row = ws_row.clone();
        for k in 0..kinds.len() {
            let avg = result.policy_average(k);
            ws_row.push(f2(avg.weighted_speedup));
            ms_row.push(f2(avg.max_slowdown));
        }
        ws_table.row(ws_row);
        ms_table.row(ms_row);
    }
    Report::new(
        "Figure 7 — Effect of workload memory intensity",
        format!(
            "(a) system throughput (WS)\n{}\n(b) unfairness (maxSD)\n{}",
            ws_table.render(),
            ms_table.render()
        ),
    )
}

/// Figure 8: OS thread weights, assigned worst-case (higher weight to
/// more intensive threads); ATLAS vs TCM.
pub fn fig8(scale: &Scale, session: &Session) -> Report {
    let apps: [(&str, f64); 6] = [
        ("gcc", 1.0),
        ("wrf", 2.0),
        ("GemsFDTD", 4.0),
        ("lbm", 8.0),
        ("libquantum", 16.0),
        ("mcf", 32.0),
    ];
    let copies = scale.threads / apps.len();
    let mut threads = Vec::new();
    let mut weights = Vec::new();
    for (name, weight) in apps {
        let profile = spec_by_name(name).expect("Table 4 benchmark");
        for _ in 0..copies {
            threads.push(profile.clone());
            weights.push(weight);
        }
    }
    let workload = WorkloadSpec::new("fig8-weights", threads);
    let result = session
        .sweep()
        .policies([
            PolicyKind::Atlas(AtlasParams::paper_default()),
            PolicyKind::Tcm(TcmParams::reproduction_default(scale.threads)),
        ])
        .workloads([workload])
        .weights(&weights)
        .run_auto();
    let mut table = Table::new(vec!["benchmark", "weight", "ATLAS speedup", "TCM speedup"]);
    let mut summaries = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for p in 0..2 {
        let r = result.get(p, 0, 0);
        let per_app: Vec<f64> = (0..apps.len())
            .map(|a| (0..copies).map(|c| r.speedups[a * copies + c]).sum::<f64>() / copies as f64)
            .collect();
        rows.push(per_app);
        summaries.push((r.policy.clone(), r.metrics));
    }
    for (a, (name, weight)) in apps.iter().enumerate() {
        table.row(vec![
            (*name).into(),
            format!("{weight}"),
            f3(rows[0][a]),
            f3(rows[1][a]),
        ]);
    }
    let (atlas, tcm) = (&summaries[0], &summaries[1]);
    Report::new(
        "Figure 8 — OS thread weights (worst-case assignment)",
        format!(
            "{}\nATLAS: WS {} maxSD {}\nTCM:   WS {} maxSD {}\nTCM vs ATLAS: WS {} / maxSD {} \
             (paper: +82.8% WS, -44.2% maxSD)\n",
            table.render(),
            f2(atlas.1.weighted_speedup),
            f2(atlas.1.max_slowdown),
            f2(tcm.1.weighted_speedup),
            f2(tcm.1.max_slowdown),
            pct_change(tcm.1.weighted_speedup, atlas.1.weighted_speedup),
            pct_change(tcm.1.max_slowdown, atlas.1.max_slowdown),
        ),
    )
}

/// Table 2 (+ Table 3): per-controller monitoring storage and the
/// baseline machine configuration.
pub fn table2() -> Report {
    let model = StorageModel::paper_baseline();
    let mut table = Table::new(vec!["structure", "function", "bits"]);
    for row in model.rows() {
        table.row(vec![row.name.into(), row.function.into(), row.bits.to_string()]);
    }
    let cfg = SystemConfig::paper_baseline();
    Report::new(
        "Table 2 — Monitoring storage cost per controller",
        format!(
            "{}\ntotal: {} bits (< 4 Kbit: {}); random-shuffle-only: {} bits (< 0.5 Kbit: {})\n\n\
             Table 3 baseline: {} cores, {} controllers x {} banks, {}-entry window,\n\
             {}-wide issue, {}-entry request buffers, round trips {}/{}/{} cycles.\n",
            table.render(),
            model.total_bits(),
            model.total_bits() < 4096,
            model.random_shuffle_only_bits(),
            model.random_shuffle_only_bits() < 512,
            cfg.num_threads,
            cfg.num_channels(),
            cfg.banks_per_channel,
            cfg.window_size,
            cfg.issue_width,
            cfg.request_buffer,
            cfg.timing.round_trip(tcm_types::RowState::Hit),
            cfg.timing.round_trip(tcm_types::RowState::Closed),
            cfg.timing.round_trip(tcm_types::RowState::Conflict),
        ),
    )
}

/// Table 4: verifies the trace generators reproduce each benchmark's
/// published MPKI / RBL / BLP.
pub fn table4() -> Report {
    let shape = MachineShape {
        num_channels: 4,
        banks_per_channel: 4,
        rows_per_bank: 16384,
    };
    let mut table = Table::new(vec![
        "benchmark", "MPKI", "gen MPKI", "RBL%", "gen RBL%", "BLP", "gen BLP",
    ]);
    let mut worst_rel = 0.0f64;
    for profile in spec2006() {
        let mut generator = TraceGenerator::new(&profile, shape, 12345);
        let mut misses = 0usize;
        let mut instructions = 0u64;
        let mut shadow: std::collections::HashMap<tcm_types::GlobalBank, tcm_types::Row> =
            Default::default();
        let (mut hits, mut accesses) = (0u64, 0u64);
        let mut burst_sum = 0usize;
        let bursts = 3000;
        for _ in 0..bursts {
            let b = generator.next_burst();
            instructions += b.gap;
            misses += b.accesses.len();
            burst_sum += b.accesses.len();
            for a in &b.accesses {
                if let Some(prev) = shadow.insert(a.global_bank(), a.row) {
                    accesses += 1;
                    if prev == a.row {
                        hits += 1;
                    }
                }
            }
        }
        let gen_mpki = misses as f64 * 1000.0 / instructions as f64;
        let gen_rbl = if accesses > 0 {
            hits as f64 / accesses as f64
        } else {
            0.0
        };
        let gen_blp = burst_sum as f64 / bursts as f64;
        worst_rel = worst_rel.max((gen_mpki - profile.mpki).abs() / profile.mpki.max(0.01));
        table.row(vec![
            profile.name.clone(),
            f2(profile.mpki),
            f2(gen_mpki),
            f2(profile.rbl * 100.0),
            f2(gen_rbl * 100.0),
            f2(profile.blp),
            f2(gen_blp),
        ]);
    }
    Report::new(
        "Table 4 — Benchmark characteristics (generator calibration)",
        format!(
            "{}\nworst relative MPKI error: {:.1}%\n",
            table.render(),
            worst_rel * 100.0
        ),
    )
}

/// Table 6: fairness of the four shuffling algorithms.
pub fn table6(scale: &Scale, session: &Session) -> Report {
    let suite = workload_suite(&[0.5], scale.workloads_per_category, scale.threads);
    let modes = [
        ("Round-robin", ShuffleMode::RoundRobin),
        ("Random", ShuffleMode::RandomOnly),
        ("Insertion", ShuffleMode::InsertionOnly),
        ("TCM (dynamic)", ShuffleMode::Dynamic),
    ];
    let result = session
        .sweep()
        .policies(modes.iter().map(|(_, mode)| {
            PolicyKind::Tcm(TcmParams::paper_default(scale.threads).with_shuffle_mode(*mode))
        }))
        .workloads(suite.iter().cloned())
        .run_auto();
    let mut table = Table::new(vec!["shuffling", "maxSD avg", "maxSD variance"]);
    for (i, (label, _)) in modes.iter().enumerate() {
        let ms: Vec<f64> = result
            .policy_results(i)
            .map(|r| r.metrics.max_slowdown)
            .collect();
        table.row(vec![(*label).into(), f2(mean(&ms)), f2(variance(&ms))]);
    }
    Report::new(
        "Table 6 — Shuffling algorithm fairness",
        format!(
            "{} 50%-intensity workloads x {} cycles.\n\n{}",
            suite.len(),
            session.run_config().horizon,
            table.render()
        ),
    )
}

/// Table 7: sensitivity to ShuffleAlgoThresh and ShuffleInterval.
pub fn table7(scale: &Scale, session: &Session) -> Report {
    let suite = workload_suite(&[0.5], scale.workloads_per_category, scale.threads);
    let mut variants: Vec<(String, String, TcmParams)> = Vec::new();
    // 1.0 forces random shuffling (the paper's own escape hatch and this
    // reproduction's headline default; see TcmParams::reproduction_default).
    for thresh in [0.05, 0.07, 0.10, 1.0] {
        variants.push((
            "ShuffleAlgoThresh".into(),
            format!("{thresh}"),
            TcmParams::paper_default(scale.threads).with_shuffle_algo_thresh(thresh),
        ));
    }
    for interval in [500u64, 600, 700, 800] {
        variants.push((
            "ShuffleInterval".into(),
            format!("{interval}"),
            TcmParams::paper_default(scale.threads).with_shuffle_interval(interval),
        ));
    }
    let result = session
        .sweep()
        .policies(variants.iter().map(|(_, _, p)| PolicyKind::Tcm(*p)))
        .workloads(suite.iter().cloned())
        .run_auto();
    let mut table = Table::new(vec!["parameter", "value", "WS", "maxSD"]);
    for (i, (label, value, _)) in variants.iter().enumerate() {
        let avg = result.policy_average(i);
        table.row(vec![
            label.clone(),
            value.clone(),
            f2(avg.weighted_speedup),
            f2(avg.max_slowdown),
        ]);
    }
    Report::new(
        "Table 7 — Sensitivity to TCM's algorithmic parameters",
        format!(
            "{} 50%-intensity workloads x {} cycles.\n\n{}",
            suite.len(),
            session.run_config().horizon,
            table.render()
        ),
    )
}

/// Table 8: TCM vs ATLAS across system configurations (controllers,
/// cores, cache size).
pub fn table8(scale: &Scale) -> Report {
    let mut table = Table::new(vec!["configuration", "value", "WS delta", "maxSD delta"]);
    let mut compare = |label: String, value: String, system: SystemConfig, mpki_scale: f64| {
        let threads = system.num_threads;
        // A fresh session per configuration: alone IPCs depend on it.
        let session = Session::new(
            RunConfig::builder().system(system).horizon(scale.horizon).build(),
        );
        let workloads: Vec<WorkloadSpec> = (0..scale.workloads_per_category.min(4))
            .map(|s| random_workload(s as u64 + 100, threads, 0.5).with_mpki_scaled(mpki_scale))
            .collect();
        let result = session
            .sweep()
            .policies([
                PolicyKind::Atlas(AtlasParams::paper_default()),
                PolicyKind::Tcm(TcmParams::paper_default(threads)),
            ])
            .workloads(workloads)
            .run_auto();
        let atlas = result.policy_average(0);
        let tcm = result.policy_average(1);
        table.row(vec![
            label,
            value,
            pct_change(tcm.weighted_speedup, atlas.weighted_speedup),
            pct_change(tcm.max_slowdown, atlas.max_slowdown),
        ]);
    };

    for channels in [1usize, 2, 4, 8] {
        let system = SystemConfig::builder()
            .num_channels(channels)
            .build()
            .expect("valid config");
        compare("controllers".into(), channels.to_string(), system, 1.0);
    }
    for cores in [4usize, 8, 16, 24, 32] {
        let system = SystemConfig::builder().num_threads(cores).build().expect("valid");
        compare("cores".into(), cores.to_string(), system, 1.0);
    }
    for (label, factor) in [("512KB", 1.0), ("1MB", 0.7), ("2MB", 0.5)] {
        let system = SystemConfig::paper_baseline();
        compare("cache size".into(), label.into(), system, factor);
    }
    Report::new(
        "Table 8 — TCM vs ATLAS across system configurations",
        format!(
            "Deltas are TCM relative to ATLAS (positive WS delta = TCM faster;\n\
             negative maxSD delta = TCM fairer). Cache size is modeled by\n\
             scaling every benchmark's MPKI (bigger cache => fewer misses).\n\n{}",
            table.render()
        ),
    )
}

/// Ablation study (beyond the paper): isolates the contribution of each
/// of TCM's mechanisms, plus the FQM extension baseline.
pub fn ablation(scale: &Scale, session: &Session) -> Report {
    let suite = workload_suite(&[0.5, 1.0], scale.workloads_per_category, scale.threads);
    let n = scale.threads;
    let configs: [(&str, PolicyKind); 5] = [
        ("TCM (full)", PolicyKind::Tcm(TcmParams::reproduction_default(n))),
        // No latency cluster: a vanishing ClusterThresh puts everyone in
        // the bandwidth cluster -> pure shuffling.
        (
            "TCM, no latency cluster",
            PolicyKind::Tcm(TcmParams::reproduction_default(n).with_cluster_thresh(1e-9)),
        ),
        // No shuffling: static ascending-niceness ranking per quantum.
        (
            "TCM, no shuffling (static rank)",
            PolicyKind::Tcm(
                TcmParams::reproduction_default(n).with_shuffle_mode(ShuffleMode::Static),
            ),
        ),
        // Reference points.
        ("FR-FCFS (no thread awareness)", PolicyKind::FrFcfs),
        ("FQM (fair queueing, extension)", PolicyKind::FairQueueing),
    ];
    let result = session
        .sweep()
        .policies(configs.iter().map(|(_, kind)| kind.clone()))
        .workloads(suite.iter().cloned())
        .run_auto();
    let mut table = Table::new(vec!["configuration", "WS", "maxSD", "HS"]);
    for (i, (label, _)) in configs.iter().enumerate() {
        let avg = result.policy_average(i);
        table.row(vec![
            (*label).into(),
            f2(avg.weighted_speedup),
            f2(avg.max_slowdown),
            f3(avg.harmonic_speedup),
        ]);
    }
    Report::new(
        "Ablation — which of TCM's mechanisms earns what",
        format!(
            "{} workloads (50% and 100% intensity) x {} cycles.\n\n{}\n\
             Expected: removing the latency cluster costs throughput;\n\
             removing shuffling costs fairness; FQM is fair but slow.\n",
            suite.len(),
            session.run_config().horizon,
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_report_is_static_and_complete() {
        let r = fig3();
        assert!(r.title.contains("Figure 3"));
        assert!(r.body.contains("round-robin"));
        assert!(r.body.contains("insertion"));
        // 8 intervals x 4 levels of thread labels appear per diagram.
        assert!(r.body.matches("N0").count() >= 8);
    }

    #[test]
    fn table2_report_matches_storage_model() {
        let r = table2();
        assert!(r.body.contains("3792"));
        assert!(r.body.contains("240"));
        assert!(r.render().starts_with("## Table 2"));
    }

    #[test]
    fn fig2_runs_at_smoke_scale() {
        let scale = Scale {
            horizon: 500_000,
            workloads_per_category: 1,
            threads: 24,
        };
        let r = fig2(&scale);
        assert!(r.body.contains("prioritized"));
    }

    #[test]
    fn table4_reports_calibration() {
        let r = table4();
        assert!(r.body.contains("mcf"));
        assert!(r.body.contains("povray"));
    }

    #[test]
    fn lineup_comparison_uses_multiple_workers() {
        let session = Session::new(
            RunConfig::builder()
                .system(SystemConfig::builder().num_threads(4).build().unwrap())
                .horizon(100_000)
                .build(),
        );
        let suite = workload_suite(&[0.5], 1, 4);
        let kinds = [PolicyKind::Fcfs, PolicyKind::FrFcfs];
        let _ = lineup_comparison(&kinds, &suite, &session);
        assert!(session.stats().max_workers > 1, "sweeps shard across workers");
    }
}
