//! Experiment harness for the TCM reproduction: one driver per table and
//! figure of the paper, shared by the `src/bin/*` binaries, the
//! `reproduce` binary (which regenerates everything and assembles
//! EXPERIMENTS.md input) and the Criterion benches.
//!
//! Experiment scale is controlled by environment variables so the same
//! code serves quick checks and full paper-scale runs:
//!
//! | variable | meaning | default |
//! |----------|---------|---------|
//! | `TCM_CYCLES` | cycles per simulation | 20,000,000 |
//! | `TCM_WORKLOADS` | workloads per intensity category | 8 |
//! | `TCM_FULL=1` | paper scale: 100 M cycles, 32 workloads | off |

#![warn(missing_docs)]

pub mod experiments;
mod scale;
mod static_prio;

pub use scale::Scale;
pub use static_prio::StaticPriority;
