//! Criterion micro-benchmarks for the batched SoA bank-timing kernel:
//! the `BankArray` operations the skip-ahead hot path performs per
//! scheduling opportunity (the `schedulable` mask kernel over the whole
//! channel, and the begin/finish service round-trip that advances one
//! bank's timing). These sit alongside the `queue_kernels` group —
//! together they cover the full per-decision cost of the indexed hot
//! path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcm_dram::{BankArray, BankSet};
use tcm_types::{BankId, Cycle, DramTiming, Row};

/// A bank array in a steady-state mix: `busy` of the `banks` banks are
/// mid-service (parked at `Cycle::MAX`), the rest alternate between
/// ready-now and ready-soon so the mask kernel takes both branches.
fn mixed_banks(banks: usize, busy: usize, now: Cycle) -> BankArray {
    let timing = DramTiming::ddr2_800();
    let mut array = BankArray::new(banks);
    for b in 0..banks {
        let bank = BankId::new(b);
        let service = array.begin_service(bank, Row::new(b % 16), now, &timing);
        if b < busy {
            continue; // leave mid-service
        }
        // Finish half the idle banks in the past (ready now) and half in
        // the near future (ready later) relative to the probe cycle.
        let slack = if b % 2 == 0 { 0 } else { 50 };
        array.finish_service(bank, service.access_done + slack);
    }
    array
}

fn bench_schedulable_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("bank_schedulable_mask");
    for &(banks, busy) in &[(4usize, 0usize), (4, 2), (8, 4), (16, 8)] {
        // Closed-row service from cycle 0 frees banks around cycle 275;
        // probing at 300 with ±50 slack splits idle banks into
        // ready-now and ready-later halves.
        let now = 300;
        let array = mixed_banks(banks, busy, 0);
        let mut pending = BankSet::default();
        for b in 0..banks {
            pending.insert(BankId::new(b));
        }
        group.bench_function(BenchmarkId::from_parameter(format!("{banks}b_{busy}busy")), |b| {
            b.iter(|| black_box(array.schedulable(black_box(pending), black_box(now))))
        });
    }
    group.finish();
}

fn bench_service_roundtrip(c: &mut Criterion) {
    let timing = DramTiming::ddr2_800();
    c.bench_function("bank_begin_finish_service", |b| {
        let mut array = BankArray::new(4);
        let mut now = 0u64;
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            let bank = BankId::new(i % 4);
            let service = array.begin_service(bank, Row::new(i % 64), now, &timing);
            array.finish_service(bank, service.access_done + 4);
            now = service.start + 1;
            black_box(service.access_done)
        })
    });
}

fn bench_open_row_probe(c: &mut Criterion) {
    // The row-hit test every pick performs per candidate request.
    let array = mixed_banks(16, 0, 0);
    c.bench_function("bank_row_state_probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(array.row_state(BankId::new(i % 16), Row::new(i % 16)))
        })
    });
}

criterion_group!(
    benches,
    bench_schedulable_mask,
    bench_service_roundtrip,
    bench_open_row_probe
);
criterion_main!(benches);
