//! Criterion micro-benchmarks for the DRAM and workload substrates: bank
//! service timing, channel issue, shadow row-buffer updates, and trace
//! generation — the inner loops every experiment spends its time in.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcm_dram::{Channel, ShadowRowBuffer};
use tcm_types::{
    BankId, ChannelId, DramTiming, MemAddress, Request, RequestId, Row, ThreadId,
};
use tcm_workload::{spec_by_name, MachineShape, TraceGenerator};

fn bench_channel_issue(c: &mut Criterion) {
    let timing = DramTiming::ddr2_800();
    c.bench_function("channel_enqueue_issue_roundtrip", |b| {
        let mut ch = Channel::with_threads(ChannelId::new(0), 4, 128, 24);
        let mut id = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            let req = Request::new(
                RequestId::new(id),
                ThreadId::new((id % 24) as usize),
                MemAddress::new(
                    ChannelId::new(0),
                    BankId::new((id % 4) as usize),
                    Row::new((id % 64) as usize),
                ),
                now,
            );
            id += 1;
            ch.enqueue(req).expect("buffer never fills at rate 1");
            let outcome = ch.issue_at((req.addr.bank.index()) as usize, 0, now, &timing);
            now = outcome.bank_free.max(now + 1);
            black_box(outcome.completes_at)
        })
    });
}

fn bench_shadow_row_buffer(c: &mut Criterion) {
    c.bench_function("shadow_row_buffer_access", |b| {
        let mut shadow = ShadowRowBuffer::new(24, 16);
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(shadow.access(
                ThreadId::new(i % 24),
                BankId::new(i % 16),
                Row::new(i % 128),
            ))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let shape = MachineShape {
        num_channels: 4,
        banks_per_channel: 4,
        rows_per_bank: 16384,
    };
    let mut group = c.benchmark_group("trace_generation");
    for name in ["mcf", "libquantum", "povray"] {
        let profile = spec_by_name(name).expect("Table 4 benchmark");
        let mut generator = TraceGenerator::new(&profile, shape, 1);
        group.bench_function(name, |b| b.iter(|| black_box(generator.next_burst())));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_channel_issue,
    bench_shadow_row_buffer,
    bench_trace_generation
);
criterion_main!(benches);
