//! Criterion micro-benchmarks for the request-queue hot path: the
//! per-decision operations the scheduler loop performs millions of times
//! per run (pending-slice lookup, bank-occupancy iteration, per-thread
//! counting, positioned take). Build with `--features tcm-dram/flat-queue`
//! to measure the pre-refactor flat queue on the same workload (the two
//! implementations share one API; see `scripts/bench.sh` for the
//! end-to-end comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcm_dram::{RequestQueue, QUEUE_IMPL};
use tcm_types::{BankId, ChannelId, MemAddress, Request, RequestId, Row, ThreadId};

const NUM_BANKS: usize = 4;
const NUM_THREADS: usize = 24;
const CAPACITY: usize = 128;

/// A queue filled to `depth` with a deterministic request mix spread
/// over banks and threads (the steady-state shape of a loaded
/// controller).
fn filled_queue(depth: usize) -> RequestQueue {
    let mut q = RequestQueue::new(CAPACITY, NUM_BANKS);
    for i in 0..depth as u64 {
        let req = Request::new(
            RequestId::new(i),
            ThreadId::new((i % NUM_THREADS as u64) as usize),
            MemAddress::new(
                ChannelId::new(0),
                BankId::new((i % NUM_BANKS as u64) as usize),
                Row::new((i % 64) as usize),
            ),
            i,
        );
        q.push(req).expect("depth <= capacity");
    }
    q
}

fn bench_pending_for_bank(c: &mut Criterion) {
    let mut group = c.benchmark_group(&format!("pending_for_bank/{QUEUE_IMPL}"));
    for depth in [16usize, 64, 128] {
        let mut q = filled_queue(depth);
        group.bench_function(BenchmarkId::from_parameter(depth), |b| {
            let mut bank = 0usize;
            b.iter(|| {
                bank = (bank + 1) % NUM_BANKS;
                black_box(q.pending_for_bank(BankId::new(bank)).len())
            })
        });
    }
    group.finish();
}

fn bench_banks_with_pending(c: &mut Criterion) {
    let mut group = c.benchmark_group(&format!("banks_with_pending/{QUEUE_IMPL}"));
    for depth in [16usize, 64, 128] {
        let q = filled_queue(depth);
        group.bench_function(BenchmarkId::from_parameter(depth), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for bank in q.banks_with_pending() {
                    acc += bank.index();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_count_for_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group(&format!("count_for_thread/{QUEUE_IMPL}"));
    for depth in [16usize, 64, 128] {
        let q = filled_queue(depth);
        group.bench_function(BenchmarkId::from_parameter(depth), |b| {
            let mut t = 0usize;
            b.iter(|| {
                t = (t + 1) % NUM_THREADS;
                black_box(q.count_for_thread(ThreadId::new(t)))
            })
        });
    }
    group.finish();
}

fn bench_push_take_cycle(c: &mut Criterion) {
    // Steady state of the simulator: one request leaves a bank's lane,
    // another arrives — the queue stays at constant depth.
    let mut group = c.benchmark_group(&format!("push_take_cycle/{QUEUE_IMPL}"));
    for depth in [16usize, 64, 128] {
        let mut q = filled_queue(depth);
        group.bench_function(BenchmarkId::from_parameter(depth), |b| {
            let mut i = depth as u64;
            b.iter(|| {
                let bank = (i % NUM_BANKS as u64) as usize;
                let taken = q
                    .take_for_bank(BankId::new(bank), 0)
                    .expect("every bank stays populated");
                let req = Request::new(
                    RequestId::new(i),
                    ThreadId::new((i % NUM_THREADS as u64) as usize),
                    MemAddress::new(
                        ChannelId::new(0),
                        BankId::new(bank),
                        Row::new((i % 64) as usize),
                    ),
                    i,
                );
                i += 1;
                q.push(req).expect("constant depth");
                black_box(taken.id)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pending_for_bank,
    bench_banks_with_pending,
    bench_count_for_thread,
    bench_push_take_cycle
);
criterion_main!(benches);
