//! Criterion end-to-end kernels: one short simulation per experiment
//! family, so `cargo bench` exercises the exact code paths behind every
//! figure and table at a measurable size.
//!
//! * `fig1_fig4_headline/<policy>` — the shared-run kernel behind
//!   Figures 1, 4, 5, 6 and 7 (one 24-thread 50 %-intensity workload).
//! * `fig2_static_priority` — the Figure 2 strict-priority kernel.
//! * `fig8_weighted_tcm` — the Figure 8 weighted-shuffling kernel.
//! * `alone_run` — the per-benchmark alone-IPC kernel every slowdown
//!   computation depends on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcm_bench::StaticPriority;
use tcm_core::TcmParams;
use tcm_sim::{PolicyKind, System};
use tcm_types::{SystemConfig, ThreadId};
use tcm_workload::{random_workload, BenchmarkProfile, WorkloadSpec};

const KERNEL_CYCLES: u64 = 300_000;

fn bench_headline_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_fig4_headline");
    group.sample_size(10);
    let cfg = SystemConfig::paper_baseline();
    let workload = random_workload(0, 24, 0.5);
    for kind in PolicyKind::paper_lineup(24) {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let scheduler = kind.build(24, &cfg);
                    let mut sys = System::new(&cfg, &workload, scheduler, 1);
                    black_box(sys.run(KERNEL_CYCLES).total_serviced)
                })
            },
        );
    }
    group.finish();
}

fn bench_fig2_kernel(c: &mut Criterion) {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_threads = 2;
    let workload = WorkloadSpec::new(
        "fig2",
        vec![
            BenchmarkProfile::random_access(),
            BenchmarkProfile::streaming(),
        ],
    );
    let mut group = c.benchmark_group("fig2_static_priority");
    group.sample_size(10);
    group.bench_function("strict_priority_run", |b| {
        b.iter(|| {
            let policy = StaticPriority::new(ThreadId::new(0));
            let mut sys = System::new(&cfg, &workload, Box::new(policy), 5);
            black_box(sys.run(KERNEL_CYCLES).total_serviced)
        })
    });
    group.finish();
}

fn bench_fig8_kernel(c: &mut Criterion) {
    let cfg = SystemConfig::paper_baseline();
    let workload = random_workload(3, 24, 1.0);
    let weights: Vec<f64> = (0..24).map(|i| (1 << (i % 6)) as f64).collect();
    let mut group = c.benchmark_group("fig8_weighted_tcm");
    group.sample_size(10);
    group.bench_function("weighted_run", |b| {
        b.iter(|| {
            let kind = PolicyKind::Tcm(TcmParams::reproduction_default(24));
            let scheduler = kind.build(24, &cfg);
            let mut sys = System::new(&cfg, &workload, scheduler, 2);
            sys.set_thread_weights(&weights);
            black_box(sys.run(KERNEL_CYCLES).total_serviced)
        })
    });
    group.finish();
}

fn bench_alone_run(c: &mut Criterion) {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_threads = 1;
    let mut group = c.benchmark_group("alone_run");
    group.sample_size(10);
    for name in ["mcf", "libquantum"] {
        let profile = tcm_workload::spec_by_name(name).expect("benchmark");
        let workload = WorkloadSpec::new(name, vec![profile]);
        group.bench_function(name, |b| {
            b.iter(|| {
                let kind = PolicyKind::FrFcfs;
                let mut sys = System::new(&cfg, &workload, kind.build(1, &cfg), 0);
                black_box(sys.run(KERNEL_CYCLES).retired[0])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_headline_kernel,
    bench_fig2_kernel,
    bench_fig8_kernel,
    bench_alone_run
);
criterion_main!(benches);
