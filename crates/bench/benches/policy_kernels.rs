//! Criterion micro-benchmarks for the scheduling-policy kernels: the
//! per-decision `pick` latency of every policy (the operation on the
//! critical path of every DRAM scheduling decision in Figures 1/4–7),
//! plus TCM's quantum-boundary machinery (clustering, niceness,
//! shuffling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tcm_core::{
    cluster_threads, niceness_scores, InsertionShuffler, InsertionVariant, RandomShuffler, Tcm,
    TcmParams,
};
use tcm_sched::{Atlas, Fcfs, FrFcfs, ParBs, PickContext, Scheduler, Stfm};
use tcm_types::{BankId, ChannelId, MemAddress, Request, RequestId, Row, SystemConfig, ThreadId};

/// Builds a realistic pending-queue snapshot: `n` requests from distinct
/// threads, mixed rows.
fn pending(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::new(
                RequestId::new(i as u64),
                ThreadId::new(i % 24),
                MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(i % 7)),
                (i as u64) * 13,
            )
        })
        .collect()
}

fn ctx() -> PickContext {
    PickContext {
        now: 1_000_000,
        channel: ChannelId::new(0),
        bank: BankId::new(0),
        open_row: Some(Row::new(3)),
    }
}

fn bench_pick(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_pick");
    let queue = pending(12);
    let context = ctx();
    let cfg = SystemConfig::paper_baseline();

    let mut policies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Fcfs::new()),
        Box::new(FrFcfs::new()),
        Box::new(Stfm::new(24)),
        Box::new(ParBs::new(24)),
        Box::new(Atlas::new(24)),
        Box::new(Tcm::with_params(
            TcmParams::reproduction_default(24),
            24,
            &cfg,
        )),
    ];
    for policy in &mut policies {
        // PAR-BS needs its queue mirror populated.
        for r in &queue {
            policy.on_enqueue(r, 0);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &queue,
            |b, queue| b.iter(|| black_box(policy.pick(black_box(queue), &context))),
        );
    }
    group.finish();
}

fn bench_tcm_quantum_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcm_quantum_kernels");
    let n = 24;
    let mpki: Vec<f64> = (0..n).map(|i| i as f64 * 4.0 + 0.1).collect();
    let bw: Vec<u64> = (0..n).map(|i| (i as u64 + 1) * 10_000).collect();
    group.bench_function("clustering_algorithm1", |b| {
        b.iter(|| black_box(cluster_threads(black_box(&mpki), black_box(&bw), 4.0 / 24.0)))
    });

    let blp: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let rbl: Vec<f64> = (0..n).map(|i| (i % 10) as f64 / 10.0).collect();
    group.bench_function("niceness", |b| {
        b.iter(|| black_box(niceness_scores(black_box(&blp), black_box(&rbl))))
    });

    let entries: Vec<(ThreadId, i64)> =
        (0..12).map(|i| (ThreadId::new(i), (i % 5) as i64)).collect();
    let mut printed = InsertionShuffler::with_variant(entries.clone(), InsertionVariant::Printed);
    group.bench_function("insertion_shuffle_advance", |b| {
        b.iter(|| {
            printed.advance();
            black_box(printed.ranking_vec())
        })
    });
    let mut random = RandomShuffler::new((0..12).map(ThreadId::new).collect(), 7);
    group.bench_function("random_shuffle_advance", |b| {
        b.iter(|| {
            random.advance();
            black_box(random.ranking().first().copied())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pick, bench_tcm_quantum_kernels);
criterion_main!(benches);
