//! Request-selection helpers shared by all policies.
//!
//! Every evaluated scheduler resolves to some lexicographic priority key
//! over the pending requests of a bank; [`pick_max_by_key`] picks the
//! request with the maximum key, and [`age_key`] provides the universal
//! lowest-priority tie-breaker (*oldest first*, rule 3 of the paper's
//! Algorithm 3).

use std::cmp::Reverse;
use tcm_types::{Request, Row};

/// Returns the index of the request with the *maximum* `key`.
///
/// Keys must be totally ordered; embed [`age_key`] as the final tuple
/// element to guarantee uniqueness (request ids are unique), which makes
/// selection deterministic.
///
/// # Panics
///
/// Panics if `pending` is empty — the simulator only schedules banks with
/// pending work.
pub fn pick_max_by_key<K: Ord>(pending: &[Request], mut key: impl FnMut(&Request) -> K) -> usize {
    assert!(!pending.is_empty(), "no pending requests to pick from");
    let mut best = 0;
    let mut best_key = key(&pending[0]);
    for (i, r) in pending.iter().enumerate().skip(1) {
        let k = key(r);
        if k > best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

/// Age component of a priority key: older requests (smaller issue cycle,
/// then smaller id) compare *greater*, i.e. win ties.
#[inline]
pub fn age_key(r: &Request) -> Reverse<(u64, u64)> {
    Reverse((r.issued_at, r.id.raw()))
}

/// Row-hit component of a priority key: `true` when the request targets
/// the currently open row.
#[inline]
pub fn row_hit(r: &Request, open_row: Option<Row>) -> bool {
    open_row == Some(r.addr.row)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::req;

    #[test]
    fn max_key_wins_and_age_breaks_ties() {
        let pending = vec![req(0, 0, 1, 10), req(1, 1, 2, 5), req(2, 2, 3, 5)];
        // Pure age: request 1 (cycle 5, lower id than request 2).
        let idx = pick_max_by_key(&pending, age_key);
        assert_eq!(idx, 1);
    }

    #[test]
    fn lexicographic_tiers_dominate_age() {
        let pending = vec![req(0, 0, 7, 0), req(1, 1, 9, 50)];
        // Row 9 open: the younger request wins on the row-hit tier.
        let open = Some(tcm_types::Row::new(9));
        let idx = pick_max_by_key(&pending, |r| (row_hit(r, open), age_key(r)));
        assert_eq!(idx, 1);
        // No row open: age decides.
        let idx = pick_max_by_key(&pending, |r| (row_hit(r, None), age_key(r)));
        assert_eq!(idx, 0);
    }

    #[test]
    #[should_panic(expected = "no pending")]
    fn empty_pending_panics() {
        pick_max_by_key(&[], age_key);
    }

    #[test]
    fn row_hit_requires_matching_open_row() {
        let r = req(0, 0, 4, 0);
        assert!(row_hit(&r, Some(tcm_types::Row::new(4))));
        assert!(!row_hit(&r, Some(tcm_types::Row::new(5))));
        assert!(!row_hit(&r, None));
    }
}
