//! Memory-request scheduling policies: the common [`Scheduler`] interface
//! and the four baseline algorithms the paper compares TCM against.
//!
//! * [`Fcfs`] — oldest-first (thread-unaware sanity baseline).
//! * [`FrFcfs`] — row-hit-first, then oldest (Rixner et al., ISCA 2000);
//!   the policy commonly used in real controllers.
//! * [`Stfm`] — stall-time fair memory scheduling (Mutlu & Moscibroda,
//!   MICRO 2007): estimates each thread's slowdown and prioritizes the
//!   most-slowed thread when unfairness exceeds a threshold.
//! * [`ParBs`] — parallelism-aware batch scheduling (Mutlu & Moscibroda,
//!   ISCA 2008): batches requests and ranks threads shortest-job-first
//!   within a batch.
//! * [`Atlas`] — least-attained-service scheduling over long quanta
//!   (Kim et al., HPCA 2010).
//! * [`FairQueueing`] — a network-fair-queueing-style scheduler (after
//!   Nesbit et al., MICRO 2006), an extension baseline representing the
//!   fairness-only designs the paper's related work discusses.
//!
//! TCM itself lives in the `tcm-core` crate and implements the same
//! [`Scheduler`] trait.
//!
//! # Scheduling model
//!
//! The simulator consults the policy each time a DRAM bank is idle and
//! has pending requests, passing the bank's pending set and a
//! [`PickContext`]; the policy returns the index of the request to issue.
//! Policies keep their own state current via the notification hooks
//! (`on_enqueue` / `on_service` / `on_complete`) and via periodic
//! [`Scheduler::tick`]s, which receive a [`SystemView`] of per-thread
//! counters (retired instructions, misses, attained service) — the same
//! signals the paper's hardware monitors expose.
//!
//! # Example
//!
//! ```
//! use tcm_sched::{FrFcfs, PickContext, Scheduler};
//! use tcm_types::{BankId, ChannelId, MemAddress, Request, RequestId, Row, ThreadId};
//!
//! let mut policy = FrFcfs::new();
//! let addr = |row| MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(row));
//! let pending = vec![
//!     Request::new(RequestId::new(0), ThreadId::new(0), addr(1), 0),
//!     Request::new(RequestId::new(1), ThreadId::new(1), addr(2), 5),
//! ];
//! let ctx = PickContext {
//!     now: 10,
//!     channel: ChannelId::new(0),
//!     bank: BankId::new(0),
//!     open_row: Some(Row::new(2)), // request 1 is a row hit
//! };
//! assert_eq!(policy.pick(&pending, &ctx), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

mod atlas;
pub mod chaos;
mod fasthash;
mod fcfs;
mod fqm;
mod frfcfs;
mod parbs;
pub mod select;
mod stfm;

pub use atlas::{Atlas, AtlasParams};
pub use chaos::ChaosScheduler;
pub use fcfs::Fcfs;
pub use fqm::FairQueueing;
pub use frfcfs::FrFcfs;
pub use parbs::{ParBs, ParBsParams};
pub use stfm::{Stfm, StfmParams};

use tcm_chaos::FaultSpec;
use tcm_dram::ServiceOutcome;
use tcm_telemetry::{DegradationAnomaly, Telemetry};
use tcm_types::{BankId, ChannelId, Cycle, Request, Row};

/// Everything a policy may inspect when choosing the next request for a
/// bank.
#[derive(Debug, Clone, Copy)]
pub struct PickContext {
    /// Current cycle.
    pub now: Cycle,
    /// Channel owning the bank being scheduled.
    pub channel: ChannelId,
    /// The bank being scheduled (per-channel index).
    pub bank: BankId,
    /// Row currently open in the bank's row-buffer, if any.
    pub open_row: Option<Row>,
}

/// Snapshot of per-thread hardware counters, indexed by thread id.
///
/// All counters are cumulative since simulation start; policies that need
/// per-quantum deltas (ATLAS, TCM) keep their own previous snapshots.
#[derive(Debug, Clone, Copy)]
pub struct SystemView<'a> {
    /// Instructions retired per thread.
    pub retired: &'a [u64],
    /// LLC misses generated per thread.
    pub misses: &'a [u64],
    /// Bank-busy cycles attained per thread, summed over all channels —
    /// the paper's *memory service time*.
    pub service: &'a [u64],
}

impl SystemView<'_> {
    /// Number of threads in the system.
    pub fn num_threads(&self) -> usize {
        self.retired.len()
    }
}

/// Per-controller monitor state harvested at a quantum boundary for
/// meta-controller aggregation (paper §5.3).
///
/// Each field is a *delta since the previous harvest*; the harvesting
/// controller resets its local accumulators, so the meta-controller can
/// sum samples across controllers without double counting. All vectors
/// are indexed by thread id and sized to the full thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorSample {
    /// Shadow row-buffer hits per thread (RBL numerator).
    pub shadow_hits: Vec<u64>,
    /// Shadow row-buffer accesses per thread (RBL denominator).
    pub shadow_accesses: Vec<u64>,
    /// Integral of concurrently busy banks over memory-busy cycles per
    /// thread (BLP numerator).
    pub blp_integral: Vec<u64>,
    /// Cycles each thread had at least one request outstanding (BLP
    /// denominator).
    pub busy_time: Vec<u64>,
}

/// The unified scheduling directive a meta-controller broadcasts to
/// every controller after a quantum exchange (paper §5.3): one shared
/// thread ranking, so all controllers prioritize identically until the
/// next broadcast.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterPlan {
    /// Per-thread priority; larger wins, ties broken row-hit-first then
    /// oldest-first at each controller.
    pub priorities: Vec<usize>,
    /// Whether the meta-controller's plausibility guard rejected the
    /// aggregated monitor data and degraded to FR-FCFS for this quantum
    /// (all priorities equal).
    pub degraded: bool,
    /// Per-controller quarantine flags (indexed by controller), set by
    /// the meta-controller's staleness/plausibility guard. Empty when no
    /// controller has ever been quarantined — the engine treats an
    /// empty vector exactly like all-healthy, so clean runs stay
    /// bit-identical to plans without the field. A flagged controller's
    /// samples were excluded from this quantum's aggregation and the
    /// engine drops it to local FR-FCFS ordering until re-admission.
    pub quarantined: Vec<bool>,
}

/// A memory-request scheduling policy.
///
/// A policy instance arbitrates every channel *of one controller*;
/// per-channel state, where an algorithm requires it (e.g. PAR-BS
/// batches), is keyed by [`PickContext::channel`]. Flat (single
/// controller) topologies therefore behave exactly as the paper's
/// synchronized single-instance designs. In multi-controller topologies
/// each controller owns its own instance, and policies that participate
/// in §5.3-style coordination do so through the
/// [`Scheduler::quantum_exchange`] / [`Scheduler::apply_broadcast`]
/// hooks driven by a meta-controller.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Human-readable policy name (used in reports and plots).
    fn name(&self) -> &'static str;

    /// Chooses which request the bank should service next.
    ///
    /// `pending` is the non-empty, arrival-ordered set of requests queued
    /// for `ctx.bank` on `ctx.channel`; the returned value is an index
    /// into it.
    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize;

    /// Called when a request enters a controller's request buffer.
    fn on_enqueue(&mut self, _req: &Request, _now: Cycle) {}

    /// Called when a request is issued to its bank. `remaining_same_bank`
    /// is the set of requests still queued for that bank (the serviced
    /// request already removed) — the information STFM-style interference
    /// accounting needs.
    fn on_service(
        &mut self,
        _outcome: &ServiceOutcome,
        _remaining_same_bank: &[Request],
        _now: Cycle,
    ) {
    }

    /// Called when a request's data returns to the core.
    fn on_complete(&mut self, _req: &Request, _now: Cycle) {}

    /// The next cycle strictly after `now` at which [`Scheduler::tick`]
    /// should run, or `None` for policies without timers.
    fn next_tick(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    /// Timer callback (quantum/shuffle boundaries) with fresh counters.
    fn tick(&mut self, _now: Cycle, _view: &SystemView<'_>) {}

    /// Installs OS-assigned thread weights (1.0 = default). Policies that
    /// do not support weights ignore this.
    fn set_thread_weights(&mut self, _weights: &[f64]) {}

    /// Arms a monitor-state fault (from the `tcm-chaos` fault-injection
    /// layer) to corrupt this policy's internal hardware-counter state at
    /// the fault's scheduled time. Policies without internal monitors
    /// ignore it — the default is a no-op.
    fn inject_monitor_fault(&mut self, _fault: &FaultSpec) {}

    /// Hands the policy a telemetry handle for structured event tracing.
    /// Policies that emit no events ignore it — the default is a no-op.
    /// Emitting is observation-only: attaching telemetry must not change
    /// any scheduling decision.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}

    /// Typed anomaly log of the policy's plausibility guard: one entry
    /// per quantum in which implausible monitor data forced the policy to
    /// degrade to a fallback ordering. Policies without a guard return
    /// the empty slice.
    fn degradation_events(&self) -> &[DegradationAnomaly] {
        &[]
    }

    /// Harvests this controller's monitor deltas for meta-controller
    /// aggregation at a quantum boundary, resetting the local
    /// accumulators. Policies that do not participate in coordinated
    /// scheduling return `None` (the default) and are skipped by the
    /// meta-controller.
    fn quantum_exchange(&mut self, _now: Cycle) -> Option<MonitorSample> {
        None
    }

    /// Installs the meta-controller's broadcast directive. The default
    /// ignores it; coordinated policies replace their thread ranking
    /// with the plan's.
    fn apply_broadcast(&mut self, _plan: &ClusterPlan, _now: Cycle) {}
}

/// A meta-controller policy: aggregates [`MonitorSample`]s from every
/// controller at quantum boundaries and computes the unified
/// [`ClusterPlan`] broadcast back to them (paper §5.3).
///
/// The simulation engine drives the protocol: at each cycle returned by
/// [`MetaScheduler::next_tick`] it stops every controller at a barrier,
/// calls [`Scheduler::quantum_exchange`] on each controller's policy,
/// hands the samples (in controller order) to
/// [`MetaScheduler::exchange`], and installs the resulting plan via
/// [`Scheduler::apply_broadcast`] on every controller before any of
/// them schedules another request.
pub trait MetaScheduler: std::fmt::Debug + Send {
    /// The next cycle strictly after `now` at which the meta-controller
    /// must run an exchange, or `None` if it never needs one.
    fn next_tick(&self, now: Cycle) -> Option<Cycle>;

    /// Whether the exchange due at `now` needs fresh controller samples
    /// (a quantum boundary). When `false` (a shuffle boundary) the
    /// engine skips the per-controller harvest entirely, leaving each
    /// controller's quantum accumulation windows intact.
    fn needs_samples(&self, now: Cycle) -> bool;

    /// Installs OS-assigned thread weights (1.0 = default).
    fn set_thread_weights(&mut self, _weights: &[f64]) {}

    /// Runs one exchange: `samples` holds each controller's harvest in
    /// controller order (`None` for non-participating policies), `view`
    /// the system-wide cumulative counters.
    fn exchange(
        &mut self,
        now: Cycle,
        view: &SystemView<'_>,
        samples: &[Option<MonitorSample>],
    ) -> ClusterPlan;

    /// Typed anomaly log of the meta-controller's plausibility guard
    /// (mirrors [`Scheduler::degradation_events`]).
    fn degradation_events(&self) -> &[DegradationAnomaly] {
        &[]
    }

    /// Arms a monitor-state fault (from the `tcm-chaos` layer) against
    /// the *aggregated* snapshot the meta-controller computes at its
    /// next quantum boundary (mirrors
    /// [`Scheduler::inject_monitor_fault`]). Meta-controllers without
    /// monitors ignore it — the default is a no-op.
    fn inject_monitor_fault(&mut self, _fault: &FaultSpec) {}

    /// Hands the meta-controller a telemetry handle. Observation-only.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
pub(crate) mod testutil {
    //! Shared helpers for scheduler unit tests.

    use tcm_types::{
        BankId, ChannelId, Cycle, MemAddress, Request, RequestId, Row, ThreadId,
    };

    /// Builds a request on channel 0, bank 0.
    pub fn req(id: u64, thread: usize, row: usize, at: Cycle) -> Request {
        req_at_bank(id, thread, 0, row, at)
    }

    /// Builds a request on channel 0 with an explicit bank.
    pub fn req_at_bank(id: u64, thread: usize, bank: usize, row: usize, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(0), BankId::new(bank), Row::new(row)),
            at,
        )
    }

    /// A pick context for channel 0 / bank 0.
    pub fn ctx(now: Cycle, open_row: Option<usize>) -> crate::PickContext {
        crate::PickContext {
            now,
            channel: ChannelId::new(0),
            bank: BankId::new(0),
            open_row: open_row.map(Row::new),
        }
    }
}
