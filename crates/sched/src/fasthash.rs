//! A minimal multiply-based hasher for dense integer keys.
//!
//! The std `HashMap`/`HashSet` default (SipHash-1-3) is DoS-resistant but
//! costs tens of nanoseconds per lookup, which shows up directly in
//! per-request schedule picks (PAR-BS tests batch membership for every
//! pending candidate). Simulation keys are trusted, dense id newtypes, so
//! a single multiply-rotate mix is sufficient and an order of magnitude
//! cheaper.
//!
//! Hash-order sensitivity note: this hasher may only back containers
//! whose *iteration order is never observed* (membership tests, point
//! lookups, commutative folds). Anything ordering-sensitive must sort
//! explicitly — the simulator's bit-identity contract does not tolerate
//! hash-order dependence with either hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for integer-sized keys.
///
/// `write_u64`/`write_usize` mix with the 64-bit golden-ratio constant
/// (Fibonacci hashing); the byte-slice fallback is FNV-1a so arbitrary
/// `Hash` impls still work correctly, just slower.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastIdHasher(u64);

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Hasher for FastIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.0 = (self.0 ^ value).wrapping_mul(GOLDEN_GAMMA).rotate_left(26);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }
}

/// `BuildHasher` for [`FastIdHasher`]-backed sets and maps.
pub type BuildFastIdHasher = BuildHasherDefault<FastIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn set_membership_round_trips() {
        let mut set: HashSet<u64, BuildFastIdHasher> = HashSet::default();
        for i in 0..1000u64 {
            set.insert(i * 7);
        }
        assert!(set.contains(&693));
        assert!(!set.contains(&694));
        assert!(set.remove(&693));
        assert!(!set.contains(&693));
        assert_eq!(set.len(), 999);
    }

    #[test]
    fn sequential_ids_spread_across_buckets() {
        // Dense sequential keys must not collide into one chain: check
        // the low bits (bucket index for power-of-two capacities) vary.
        let mut low_bits = HashSet::new();
        for i in 0..64u64 {
            let mut h = FastIdHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 63);
        }
        assert!(low_bits.len() > 32, "low bits collapse: {}", low_bits.len());
    }
}
