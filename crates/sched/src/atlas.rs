//! ATLAS: adaptive per-thread least-attained-service scheduling (Kim,
//! Han, Mutlu, Harchol-Balter, HPCA 2010).

use crate::select::{age_key, pick_max_by_key, row_hit};
use crate::{PickContext, Scheduler, SystemView};
use tcm_types::{Cycle, Request, ThreadId};

/// ATLAS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasParams {
    /// Quantum length in cycles (paper default 10 M).
    pub quantum: Cycle,
    /// Exponential history weight α for total attained service (paper
    /// default 0.875).
    pub history_weight: f64,
    /// Starvation threshold: requests older than this are escalated above
    /// the ranking (100 K cycles in the ATLAS paper).
    pub over_threshold: Cycle,
}

impl AtlasParams {
    /// The parameters the TCM paper uses when evaluating ATLAS
    /// (QuantumLength 10 M cycles, HistoryWeight 0.875).
    pub fn paper_default() -> Self {
        Self {
            quantum: 10_000_000,
            history_weight: 0.875,
            over_threshold: 100_000,
        }
    }

    /// Paper default with a different quantum (the Figure 6 sweep varies
    /// QuantumLength from 1 K to 20 M cycles).
    pub fn with_quantum(quantum: Cycle) -> Self {
        Self {
            quantum,
            ..Self::paper_default()
        }
    }
}

impl Default for AtlasParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Least-attained-service memory scheduler.
///
/// Every quantum, each thread's *total attained service* is updated as
/// `TotalAS ← α·TotalAS + (1−α)·AS_quantum`, where `AS_quantum` is the
/// bank-busy cycles the thread received during the quantum. Threads are
/// then ranked ascending by (weight-scaled) TotalAS — the thread that
/// attained the least service gets the highest priority, which strongly
/// favors memory-non-intensive threads and maximizes system throughput,
/// at a known cost in fairness (the most intensive threads sit at the
/// bottom of the ranking quantum after quantum; the TCM paper's Figure 4
/// shows the resulting high maximum slowdown).
#[derive(Debug, Clone)]
pub struct Atlas {
    params: AtlasParams,
    total_as: Vec<f64>,
    service_snapshot: Vec<u64>,
    weights: Vec<f64>,
    /// Priority value per thread; higher = scheduled first.
    priority: Vec<usize>,
    next_quantum: Cycle,
}

impl Atlas {
    /// Creates ATLAS for `num_threads` threads with the paper defaults.
    pub fn new(num_threads: usize) -> Self {
        Self::with_params(num_threads, AtlasParams::paper_default())
    }

    /// Creates ATLAS with explicit parameters.
    pub fn with_params(num_threads: usize, params: AtlasParams) -> Self {
        Self {
            next_quantum: params.quantum,
            params,
            total_as: vec![0.0; num_threads],
            service_snapshot: vec![0; num_threads],
            weights: vec![1.0; num_threads],
            // Before the first quantum completes all threads tie; the
            // age tier decides.
            priority: vec![0; num_threads],
        }
    }

    /// Current total-attained-service estimate for `thread`.
    pub fn total_attained_service(&self, thread: ThreadId) -> f64 {
        self.total_as[thread.index()]
    }

    /// Recomputes the per-thread priority values from TotalAS and
    /// weights: rank ascending by `TotalAS / weight`, least-served thread
    /// gets the highest priority value.
    fn recompute_priorities(&mut self) {
        let n = self.total_as.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ka = self.total_as[a] / self.weights[a];
            let kb = self.total_as[b] / self.weights[b];
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        // order[0] attained the least service and receives the highest
        // priority value (n); the most-served thread receives 1.
        for (pos, &thread) in order.iter().enumerate() {
            self.priority[thread] = n - pos;
        }
    }
}

impl Scheduler for Atlas {
    fn name(&self) -> &'static str {
        "ATLAS"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        let now = ctx.now;
        let threshold = self.params.over_threshold;
        pick_max_by_key(pending, |r| {
            let starving = now.saturating_sub(r.issued_at) > threshold;
            (
                starving,
                self.priority.get(r.thread.index()).copied().unwrap_or(0),
                row_hit(r, ctx.open_row),
                age_key(r),
            )
        })
    }

    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        Some(self.next_quantum.max(now + 1))
    }

    fn tick(&mut self, now: Cycle, view: &SystemView<'_>) {
        let alpha = self.params.history_weight;
        for i in 0..self.total_as.len() {
            let service = view.service.get(i).copied().unwrap_or(0);
            let delta = service.saturating_sub(self.service_snapshot[i]) as f64;
            self.service_snapshot[i] = service;
            self.total_as[i] = alpha * self.total_as[i] + (1.0 - alpha) * delta;
        }
        self.recompute_priorities();
        self.next_quantum = now + self.params.quantum;
    }

    fn set_thread_weights(&mut self, weights: &[f64]) {
        for (w, &v) in self.weights.iter_mut().zip(weights) {
            *w = v.max(f64::MIN_POSITIVE);
        }
        self.recompute_priorities();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, req};

    fn view<'a>(service: &'a [u64], zeros: &'a [u64]) -> SystemView<'a> {
        SystemView {
            retired: zeros,
            misses: zeros,
            service,
        }
    }

    #[test]
    fn least_attained_service_thread_wins_after_quantum() {
        let mut a = Atlas::new(2);
        let zeros = [0u64, 0];
        a.tick(10_000_000, &view(&[500_000, 10_000], &zeros));
        // Thread 1 attained far less service -> higher priority.
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 2, 50)];
        assert_eq!(a.pick(&pending, &ctx(100, None)), 1);
        assert!(
            a.total_attained_service(ThreadId::new(1))
                < a.total_attained_service(ThreadId::new(0))
        );
    }

    #[test]
    fn history_weight_smooths_updates() {
        let mut a = Atlas::new(1);
        let zeros = [0u64];
        a.tick(10_000_000, &view(&[1_000_000], &zeros));
        let first = a.total_attained_service(ThreadId::new(0));
        assert!((first - 0.125 * 1_000_000.0).abs() < 1.0);
        // No service in the second quantum: TotalAS decays by alpha.
        a.tick(20_000_000, &view(&[1_000_000], &zeros));
        let second = a.total_attained_service(ThreadId::new(0));
        assert!((second - first * 0.875).abs() < 1.0);
    }

    #[test]
    fn starving_requests_escalate_over_ranking() {
        let mut a = Atlas::new(2);
        let zeros = [0u64, 0];
        a.tick(10_000_000, &view(&[500_000, 10_000], &zeros));
        // Thread 0 is deprioritized by rank, but its request is ancient
        // while thread 1's is fresh (age below the 100 K threshold).
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 2, 10_150_000)];
        let c = ctx(10_000_000 + 200_000, None);
        assert_eq!(a.pick(&pending, &c), 0);
    }

    #[test]
    fn before_first_quantum_row_hits_and_age_decide() {
        let mut a = Atlas::new(2);
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 9, 100)];
        assert_eq!(a.pick(&pending, &ctx(200, Some(9))), 1);
        assert_eq!(a.pick(&pending, &ctx(200, None)), 0);
    }

    #[test]
    fn weights_scale_attained_service() {
        let mut a = Atlas::new(2);
        let zeros = [0u64, 0];
        // Both threads attained the same service...
        a.tick(10_000_000, &view(&[100_000, 100_000], &zeros));
        // ...but thread 0 has weight 8, so its scaled AS looks tiny.
        a.set_thread_weights(&[8.0, 1.0]);
        let pending = vec![req(0, 0, 1, 50), req(1, 1, 2, 0)];
        assert_eq!(a.pick(&pending, &ctx(100, None)), 0);
    }

    #[test]
    fn quantum_timer_advances() {
        let mut a = Atlas::new(1);
        assert_eq!(a.next_tick(0), Some(10_000_000));
        let zeros = [0u64];
        a.tick(10_000_000, &view(&[0], &zeros));
        assert_eq!(a.next_tick(10_000_000), Some(20_000_000));
    }
}
