//! FR-FCFS: first-ready, first-come-first-served (Rixner et al., ISCA
//! 2000).

use crate::select::{age_key, pick_max_by_key, row_hit};
use crate::{PickContext, Scheduler};
use tcm_types::Request;

/// Row-hit-first, then oldest-first.
///
/// The thread-unaware policy used by real memory controllers and the
/// paper's first baseline: it maximizes DRAM throughput by exploiting the
/// open row, but lets high-row-buffer-locality threads starve everyone
/// sharing their banks (the paper's Figure 1 shows it is both the least
/// fair and among the lowest-throughput policies for multiprogrammed
/// workloads).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        pick_max_by_key(pending, |r| (row_hit(r, ctx.open_row), age_key(r)))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, req};

    #[test]
    fn row_hit_beats_age() {
        let mut s = FrFcfs::new();
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 9, 100)];
        assert_eq!(s.pick(&pending, &ctx(200, Some(9))), 1);
    }

    #[test]
    fn oldest_wins_without_open_row() {
        let mut s = FrFcfs::new();
        let pending = vec![req(1, 0, 1, 50), req(0, 1, 9, 10)];
        assert_eq!(s.pick(&pending, &ctx(200, None)), 1);
    }

    #[test]
    fn oldest_row_hit_wins_among_hits() {
        let mut s = FrFcfs::new();
        let pending = vec![req(0, 0, 9, 50), req(1, 1, 9, 10), req(2, 2, 1, 0)];
        assert_eq!(s.pick(&pending, &ctx(200, Some(9))), 1);
    }
}
