//! FQM: fair-queueing memory scheduling (after Nesbit et al., MICRO
//! 2006), included as an extension baseline beyond the paper's four.
//!
//! The TCM paper's related-work section cites fair-queueing schedulers
//! as the archetype of fairness-only designs ("by trying to equalize the
//! amount of bandwidth each thread receives, some notion of fairness can
//! be achieved, but at a large expense to system throughput"). This
//! implementation lets that claim be checked in this substrate (the
//! `ablation` experiment binary includes it).

use crate::select::{age_key, pick_max_by_key, row_hit};
use crate::{PickContext, Scheduler};
use std::cmp::Reverse;
use tcm_dram::ServiceOutcome;
use tcm_types::{Cycle, Request, ThreadId};

/// Network-fair-queueing-style memory scheduler.
///
/// Each thread has a *virtual time* that advances by the service it
/// consumes, scaled by the inverse of its share (equal shares here, as in
/// the original's default). Banks service the pending request whose
/// thread has the smallest virtual time — approximating the schedule of
/// an idealized processor-sharing memory system. Row hits and age break
/// ties.
#[derive(Debug, Clone)]
pub struct FairQueueing {
    /// Virtual start time per thread.
    virtual_time: Vec<u64>,
}

impl FairQueueing {
    /// Creates the policy for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        Self {
            virtual_time: vec![0; num_threads],
        }
    }

    /// The current virtual time of `thread`.
    pub fn virtual_time(&self, thread: ThreadId) -> u64 {
        self.virtual_time.get(thread.index()).copied().unwrap_or(0)
    }
}

impl Scheduler for FairQueueing {
    fn name(&self) -> &'static str {
        "FQM"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        pick_max_by_key(pending, |r| {
            (
                Reverse(self.virtual_time(r.thread)),
                row_hit(r, ctx.open_row),
                age_key(r),
            )
        })
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        _remaining_same_bank: &[Request],
        _now: Cycle,
    ) {
        // Advance the servicing thread's virtual clock by the consumed
        // service. Idle threads' clocks are caught up lazily below so a
        // long-idle thread cannot bank unbounded credit.
        let i = outcome.request.thread.index();
        if let Some(vt) = self.virtual_time.get_mut(i) {
            *vt += outcome.bank_busy();
        }
    }

    fn on_enqueue(&mut self, req: &Request, _now: Cycle) {
        // Catch-up rule: a newly arriving thread's virtual time jumps to
        // at least the minimum active virtual time, preventing idle-time
        // credit hoarding (the fair-queueing "virtual start" rule).
        let min = self.virtual_time.iter().copied().min().unwrap_or(0);
        if let Some(vt) = self.virtual_time.get_mut(req.thread.index()) {
            *vt = (*vt).max(min);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, req};

    fn outcome(thread: usize, busy: u64) -> ServiceOutcome {
        use tcm_types::{BankId, ChannelId, MemAddress, RequestId, Row};
        ServiceOutcome {
            request: Request::new(
                RequestId::new(0),
                ThreadId::new(thread),
                MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(0)),
                0,
            ),
            row_state: tcm_types::RowState::Closed,
            bank_start: 0,
            bank_free: busy,
            completes_at: busy + 75,
            service_cycles: busy,
        }
    }

    #[test]
    fn least_served_thread_wins() {
        let mut s = FairQueueing::new(2);
        // Thread 0 consumed lots of service.
        s.on_service(&outcome(0, 10_000), &[], 10_000);
        let pending = vec![req(0, 0, 9, 0), req(1, 1, 1, 50)];
        // Thread 0 has the row hit and the age, but thread 1's virtual
        // time is smaller.
        assert_eq!(s.pick(&pending, &ctx(100, Some(9))), 1);
    }

    #[test]
    fn equal_virtual_times_fall_back_to_frfcfs() {
        let mut s = FairQueueing::new(2);
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 9, 100)];
        assert_eq!(s.pick(&pending, &ctx(200, Some(9))), 1, "row hit wins");
        assert_eq!(s.pick(&pending, &ctx(200, None)), 0, "age wins");
    }

    #[test]
    fn virtual_time_accumulates_service() {
        let mut s = FairQueueing::new(2);
        s.on_service(&outcome(1, 325), &[], 325);
        s.on_service(&outcome(1, 125), &[], 450);
        assert_eq!(s.virtual_time(ThreadId::new(1)), 450);
        assert_eq!(s.virtual_time(ThreadId::new(0)), 0);
    }

    #[test]
    fn arrival_catch_up_prevents_credit_hoarding() {
        let mut s = FairQueueing::new(2);
        s.on_service(&outcome(0, 1_000), &[], 1_000);
        s.on_service(&outcome(1, 4_000), &[], 5_000);
        // Thread 0 arrives after a long idle period: it catches up to the
        // minimum (its own 1_000 is already >= min), stays put.
        s.on_enqueue(&req(5, 0, 1, 6_000), 6_000);
        assert_eq!(s.virtual_time(ThreadId::new(0)), 1_000);
    }
}
