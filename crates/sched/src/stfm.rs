//! STFM: stall-time fair memory scheduling (Mutlu & Moscibroda, MICRO
//! 2007).

use crate::select::{age_key, pick_max_by_key, row_hit};
use crate::{PickContext, Scheduler, SystemView};
use tcm_dram::ServiceOutcome;
use tcm_types::{Cycle, Request, ThreadId};

/// STFM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StfmParams {
    /// Unfairness threshold α: fairness mode engages when
    /// `max slowdown / min slowdown` exceeds it (paper default 1.1).
    pub fairness_threshold: f64,
    /// Cycles between decay ticks of the slowdown estimators (paper
    /// default 2^24), letting estimates track phase changes.
    pub interval_length: Cycle,
}

impl StfmParams {
    /// The parameters the paper uses when evaluating STFM
    /// (FairnessThreshold 1.1, IntervalLength 2^24).
    pub fn paper_default() -> Self {
        Self {
            fairness_threshold: 1.1,
            interval_length: 1 << 24,
        }
    }
}

impl Default for StfmParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Stall-time fair memory scheduler.
///
/// Estimates each thread's memory slowdown `S = T_shared / T_alone` and,
/// when the ratio of the largest to the smallest slowdown exceeds
/// `fairness_threshold`, prioritizes the most-slowed thread; otherwise it
/// behaves as FR-FCFS.
///
/// Estimation (a faithful simplification of the original's heuristics,
/// documented in DESIGN.md): `T_shared` accumulates each completed
/// request's total memory latency; `T_interference` accumulates, for each
/// queued request, the bank-busy cycles spent servicing *other* threads'
/// requests ahead of it; `T_alone = T_shared − T_interference`.
#[derive(Debug, Clone)]
pub struct Stfm {
    params: StfmParams,
    t_shared: Vec<f64>,
    t_interference: Vec<f64>,
    completed: Vec<u64>,
    /// Memoized `slowdown()` per thread, refreshed whenever that
    /// thread's estimator inputs change. `slowdown_extremes` runs on
    /// every pick; reading the cache avoids one division per thread per
    /// pick (the cached value is the identical division result, so
    /// decisions are bit-for-bit unchanged).
    slowdowns: Vec<f64>,
    next_decay: Cycle,
}

impl Stfm {
    /// Creates STFM for `num_threads` threads with the paper's defaults.
    pub fn new(num_threads: usize) -> Self {
        Self::with_params(num_threads, StfmParams::paper_default())
    }

    /// Creates STFM with explicit parameters.
    pub fn with_params(num_threads: usize, params: StfmParams) -> Self {
        Self {
            next_decay: params.interval_length,
            params,
            t_shared: vec![0.0; num_threads],
            t_interference: vec![0.0; num_threads],
            completed: vec![0; num_threads],
            slowdowns: vec![1.0; num_threads],
        }
    }

    /// Refreshes the memoized slowdown for thread `i` after its inputs
    /// changed.
    fn refresh_slowdown(&mut self, i: usize) {
        self.slowdowns[i] = self.slowdown(ThreadId::new(i));
    }

    /// Current slowdown estimate for `thread` (≥ 1).
    pub fn slowdown(&self, thread: ThreadId) -> f64 {
        let i = thread.index();
        let shared = self.t_shared[i];
        if shared <= 0.0 {
            return 1.0;
        }
        let alone = (shared - self.t_interference[i]).max(1.0);
        (shared / alone).max(1.0)
    }

    /// `(max, min)` slowdown over threads with observed memory activity;
    /// `None` when fewer than two threads are active.
    fn slowdown_extremes(&self) -> Option<(f64, ThreadId, f64)> {
        let mut max = f64::MIN;
        let mut max_thread = ThreadId::new(0);
        let mut min = f64::MAX;
        let mut active = 0;
        for i in 0..self.t_shared.len() {
            if self.completed[i] == 0 {
                continue;
            }
            active += 1;
            let s = self.slowdowns[i];
            if s > max {
                max = s;
                max_thread = ThreadId::new(i);
            }
            min = min.min(s);
        }
        (active >= 2).then_some((max, max_thread, min))
    }
}

impl Scheduler for Stfm {
    fn name(&self) -> &'static str {
        "STFM"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        if let Some((max, max_thread, min)) = self.slowdown_extremes() {
            if min > 0.0 && max / min > self.params.fairness_threshold {
                // Fairness mode: requests of the most-slowed thread first.
                return pick_max_by_key(pending, |r| {
                    (
                        r.thread == max_thread,
                        row_hit(r, ctx.open_row),
                        age_key(r),
                    )
                });
            }
        }
        // Throughput mode: plain FR-FCFS.
        pick_max_by_key(pending, |r| (row_hit(r, ctx.open_row), age_key(r)))
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        remaining_same_bank: &[Request],
        _now: Cycle,
    ) {
        let busy = outcome.bank_busy() as f64;
        let servicer = outcome.request.thread;
        for r in remaining_same_bank {
            if r.thread != servicer {
                if let Some(t) = self.t_interference.get_mut(r.thread.index()) {
                    *t += busy;
                    self.refresh_slowdown(r.thread.index());
                }
            }
        }
    }

    fn on_complete(&mut self, req: &Request, now: Cycle) {
        let i = req.thread.index();
        if let Some(t) = self.t_shared.get_mut(i) {
            *t += (now - req.issued_at) as f64;
            self.completed[i] += 1;
            self.refresh_slowdown(i);
        }
    }

    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        Some(self.next_decay.max(now + 1))
    }

    fn tick(&mut self, now: Cycle, _view: &SystemView<'_>) {
        // Exponential decay so estimates follow program phases.
        for t in &mut self.t_shared {
            *t *= 0.5;
        }
        for t in &mut self.t_interference {
            *t *= 0.5;
        }
        for i in 0..self.slowdowns.len() {
            self.refresh_slowdown(i);
        }
        self.next_decay = now + self.params.interval_length;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, req};
    use tcm_types::{BankId, ChannelId, MemAddress, RequestId, Row};

    fn outcome(thread: usize, busy: u64) -> ServiceOutcome {
        ServiceOutcome {
            request: Request::new(
                RequestId::new(99),
                ThreadId::new(thread),
                MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(0)),
                0,
            ),
            row_state: tcm_types::RowState::Closed,
            bank_start: 0,
            bank_free: busy,
            completes_at: busy + 75,
            service_cycles: busy,
        }
    }

    #[test]
    fn defaults_match_paper() {
        let p = StfmParams::paper_default();
        assert!((p.fairness_threshold - 1.1).abs() < 1e-12);
        assert_eq!(p.interval_length, 1 << 24);
    }

    #[test]
    fn behaves_like_frfcfs_when_fair() {
        let mut s = Stfm::new(2);
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 9, 100)];
        assert_eq!(s.pick(&pending, &ctx(200, Some(9))), 1, "row hit wins");
    }

    #[test]
    fn slowdown_starts_at_one_and_grows_with_interference() {
        let mut s = Stfm::new(2);
        assert_eq!(s.slowdown(ThreadId::new(0)), 1.0);
        // Thread 1 waits behind thread 0's service repeatedly.
        for i in 0..10u64 {
            let waiting = vec![req(i, 1, 5, 0)];
            s.on_service(&outcome(0, 300), &waiting, 300);
        }
        // Thread 1's requests complete with big latencies.
        for i in 0..10u64 {
            s.on_complete(&req(100 + i, 1, 5, 0), 400);
        }
        // Thread 0 completes with tiny latencies and no interference.
        for i in 0..10u64 {
            s.on_complete(&req(200 + i, 0, 5, 0), 200);
        }
        assert!(s.slowdown(ThreadId::new(1)) > 2.0);
        assert_eq!(s.slowdown(ThreadId::new(0)), 1.0);
    }

    #[test]
    fn fairness_mode_prioritizes_most_slowed_thread() {
        let mut s = Stfm::new(2);
        // Make thread 1 heavily slowed.
        for i in 0..10u64 {
            let waiting = vec![req(i, 1, 5, 0)];
            s.on_service(&outcome(0, 300), &waiting, 300);
            s.on_complete(&req(100 + i, 1, 5, 0), 400);
            s.on_complete(&req(200 + i, 0, 5, 0), 200);
        }
        // Thread 0 has a row hit, thread 1 does not — fairness wins anyway.
        let pending = vec![req(0, 0, 9, 0), req(1, 1, 5, 50)];
        assert_eq!(s.pick(&pending, &ctx(500, Some(9))), 1);
    }

    #[test]
    fn decay_halves_estimates() {
        let mut s = Stfm::new(1);
        s.on_complete(&req(0, 0, 1, 0), 1000);
        let view = SystemView {
            retired: &[0],
            misses: &[0],
            service: &[0],
        };
        let before = s.t_shared[0];
        s.tick(1 << 24, &view);
        assert!((s.t_shared[0] - before / 2.0).abs() < 1e-9);
        assert_eq!(s.next_tick(1 << 24), Some((1 << 24) + (1 << 24)));
    }

    #[test]
    fn single_active_thread_never_triggers_fairness_mode() {
        let mut s = Stfm::new(2);
        for i in 0..5u64 {
            s.on_complete(&req(i, 0, 1, 0), 10_000);
        }
        assert!(s.slowdown_extremes().is_none());
        let pending = vec![req(10, 0, 1, 0), req(11, 1, 9, 100)];
        assert_eq!(s.pick(&pending, &ctx(200, Some(9))), 1, "still FR-FCFS");
    }
}
