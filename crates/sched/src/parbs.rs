//! PAR-BS: parallelism-aware batch scheduling (Mutlu & Moscibroda, ISCA
//! 2008).

use crate::fasthash::BuildFastIdHasher;
use crate::select::{age_key, pick_max_by_key, row_hit};
use crate::{PickContext, Scheduler};
use std::collections::HashSet;
use tcm_dram::ServiceOutcome;
use tcm_types::{ChannelId, Cycle, Request, RequestId};

/// PAR-BS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParBsParams {
    /// Maximum marked requests per thread per bank when forming a batch
    /// (the TCM paper evaluates PAR-BS with BatchCap 5 and sweeps 1–10 in
    /// its Figure 6).
    pub batch_cap: usize,
}

impl ParBsParams {
    /// The TCM paper's PAR-BS configuration (BatchCap 5).
    pub fn paper_default() -> Self {
        Self { batch_cap: 5 }
    }
}

impl Default for ParBsParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-channel batch state.
#[derive(Debug, Clone, Default)]
struct BatchState {
    /// Requests marked into the current batch. Membership is tested for
    /// every pending candidate on every pick, so the set uses the cheap
    /// id hasher; its iteration order is never observed.
    marked: HashSet<RequestId, BuildFastIdHasher>,
    /// Thread priority values for the current batch; higher = first.
    priority: Vec<usize>,
    /// Mirror of the channel's queued requests (the batch former needs
    /// visibility across all banks, while `pick` only sees one bank).
    queued: Vec<Request>,
    /// Ids of `queued`, kept index-parallel so the per-service removal
    /// scan walks 8-byte ids instead of 48-byte requests.
    queued_ids: Vec<RequestId>,
}

/// Parallelism-aware batch scheduler.
///
/// Forms *batches*: when no marked request remains on a channel, up to
/// `batch_cap` oldest requests per thread per bank are marked. Marked
/// requests are strictly prioritized over unmarked ones (this provides
/// starvation freedom), and within a batch threads are ranked
/// shortest-job-first by their maximum per-bank marked load (ties by
/// total load) so that light threads finish the batch quickly and each
/// thread's requests are serviced in parallel across banks. The full
/// priority order is the published rule: marked-first, then row-hit, then
/// rank, then oldest.
#[derive(Debug, Clone)]
pub struct ParBs {
    params: ParBsParams,
    num_threads: usize,
    /// Batch state indexed densely by channel, grown on first touch
    /// (channel ids are dense, so a `Vec` replaces a hashed lookup on
    /// every pick/enqueue/service).
    channels: Vec<BatchState>,
}

impl ParBs {
    /// Creates PAR-BS for `num_threads` threads with the paper defaults.
    pub fn new(num_threads: usize) -> Self {
        Self::with_params(num_threads, ParBsParams::paper_default())
    }

    /// Creates PAR-BS with explicit parameters.
    pub fn with_params(num_threads: usize, params: ParBsParams) -> Self {
        assert!(params.batch_cap > 0, "batch cap must be non-zero");
        Self {
            params,
            num_threads,
            channels: Vec::new(),
        }
    }

    /// The batch state for `channel`, growing the dense table on first
    /// touch.
    fn state_mut(&mut self, channel: ChannelId) -> &mut BatchState {
        let index = channel.index();
        if index >= self.channels.len() {
            self.channels.resize_with(index + 1, BatchState::default);
        }
        &mut self.channels[index]
    }

    /// Forms a new batch for one channel from its queued-request mirror.
    fn form_batch(state: &mut BatchState, cap: usize, num_threads: usize) {
        state.marked.clear();
        // Group by (thread, bank) by sorting the mirror in place — its
        // order is otherwise irrelevant (`on_service` swap-removes), and
        // sorting avoids a per-batch map of per-group allocations. Ids
        // are unique, so the key is a total order and an unstable sort
        // is deterministic.
        state.queued.sort_unstable_by_key(|r| {
            (
                r.thread.index(),
                r.addr.bank.index(),
                r.issued_at,
                r.id.raw(),
            )
        });
        // Walk each (thread, bank) run oldest-first and mark up to `cap`,
        // accumulating per-thread marked load per bank for the ranking.
        let mut max_load = vec![0usize; num_threads];
        let mut total_load = vec![0usize; num_threads];
        let mut start = 0;
        while start < state.queued.len() {
            let thread = state.queued[start].thread.index();
            let bank = state.queued[start].addr.bank.index();
            let mut end = start + 1;
            while end < state.queued.len()
                && state.queued[end].thread.index() == thread
                && state.queued[end].addr.bank.index() == bank
            {
                end += 1;
            }
            let marked = (end - start).min(cap);
            for r in &state.queued[start..start + marked] {
                state.marked.insert(r.id);
            }
            if thread < num_threads {
                max_load[thread] = max_load[thread].max(marked);
                total_load[thread] += marked;
            }
            start = end;
        }
        // The sort reordered `queued`; rebuild the parallel id mirror.
        state.queued_ids.clear();
        state.queued_ids.extend(state.queued.iter().map(|r| r.id));
        // Shortest job first: ascending (max load, total load).
        let mut order: Vec<usize> = (0..num_threads).collect();
        order.sort_by_key(|&t| (max_load[t], total_load[t]));
        state.priority = vec![0; num_threads];
        for (pos, &t) in order.iter().enumerate() {
            state.priority[t] = num_threads - pos;
        }
    }
}

impl Scheduler for ParBs {
    fn name(&self) -> &'static str {
        "PAR-BS"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        let cap = self.params.batch_cap;
        let num_threads = self.num_threads;
        let state = self.state_mut(ctx.channel);
        if state.marked.is_empty() && !state.queued.is_empty() {
            Self::form_batch(state, cap, num_threads);
        }
        pick_max_by_key(pending, |r| {
            (
                state.marked.contains(&r.id),
                row_hit(r, ctx.open_row),
                state.priority.get(r.thread.index()).copied().unwrap_or(0),
                age_key(r),
            )
        })
    }

    fn on_enqueue(&mut self, req: &Request, _now: Cycle) {
        let state = self.state_mut(req.addr.channel);
        state.queued.push(*req);
        state.queued_ids.push(req.id);
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        _remaining_same_bank: &[Request],
        _now: Cycle,
    ) {
        let id = outcome.request.id;
        if let Some(state) = self.channels.get_mut(outcome.request.addr.channel.index()) {
            state.marked.remove(&id);
            if let Some(pos) = state.queued_ids.iter().position(|&qid| qid == id) {
                state.queued.swap_remove(pos);
                state.queued_ids.swap_remove(pos);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, req, req_at_bank};

    fn outcome_for(r: &Request) -> ServiceOutcome {
        ServiceOutcome {
            request: *r,
            row_state: tcm_types::RowState::Closed,
            bank_start: 0,
            bank_free: 275,
            completes_at: 400,
            service_cycles: 325,
        }
    }

    #[test]
    fn marked_requests_beat_unmarked_row_hits() {
        let mut s = ParBs::with_params(2, ParBsParams { batch_cap: 1 });
        // Thread 0 has two requests on bank 0; cap 1 marks only the older.
        let r0 = req(0, 0, 1, 0);
        let r1 = req(1, 0, 9, 10);
        s.on_enqueue(&r0, 0);
        s.on_enqueue(&r1, 10);
        // Row 9 open: unmarked r1 is a row hit, but marked r0 wins.
        let pending = vec![r0, r1];
        assert_eq!(s.pick(&pending, &ctx(20, Some(9))), 0);
    }

    #[test]
    fn shortest_job_first_ranks_light_thread_higher() {
        let mut s = ParBs::new(2);
        // Thread 0: 4 requests on bank 0 (heavy). Thread 1: 1 request.
        let mut all = Vec::new();
        for i in 0..4 {
            let r = req(i, 0, 1, i);
            s.on_enqueue(&r, i);
            all.push(r);
        }
        let light = req(10, 1, 2, 4);
        s.on_enqueue(&light, 4);
        all.push(light);
        // All five are marked (cap 5); light thread must rank higher.
        let idx = s.pick(&all, &ctx(10, None));
        assert_eq!(all[idx].thread.index(), 1);
    }

    #[test]
    fn new_batch_forms_when_previous_drains() {
        let mut s = ParBs::with_params(1, ParBsParams { batch_cap: 1 });
        let r0 = req(0, 0, 1, 0);
        let r1 = req(1, 0, 2, 10);
        s.on_enqueue(&r0, 0);
        s.on_enqueue(&r1, 10);
        let pending = vec![r0, r1];
        assert_eq!(s.pick(&pending, &ctx(20, None)), 0, "older marked first");
        s.on_service(&outcome_for(&r0), &pending[1..], 300);
        // Batch drained; r1 becomes marked in the new batch.
        let pending = vec![r1];
        assert_eq!(s.pick(&pending, &ctx(400, None)), 0);
        let state = &s.channels[ChannelId::new(0).index()];
        assert!(state.marked.contains(&r1.id));
    }

    #[test]
    fn batching_is_per_channel() {
        let mut s = ParBs::new(1);
        let r0 = req(0, 0, 1, 0); // channel 0
        s.on_enqueue(&r0, 0);
        s.pick(&[r0], &ctx(1, None));
        assert!(!s.channels[ChannelId::new(0).index()].marked.is_empty());
        assert!(s.channels.get(ChannelId::new(1).index()).is_none());
    }

    #[test]
    fn max_bank_load_drives_rank_not_total() {
        let mut s = ParBs::new(2);
        // Thread 0: 3 requests all on bank 0 (max load 3).
        // Thread 1: 3 requests spread over banks 1,2,3 (max load 1).
        let mut all = Vec::new();
        for i in 0..3 {
            let r = req_at_bank(i, 0, 0, 1, i);
            s.on_enqueue(&r, i);
            all.push(r);
        }
        for (j, b) in [1usize, 2, 3].iter().enumerate() {
            let r = req_at_bank(10 + j as u64, 1, *b, 1, 3 + j as u64);
            s.on_enqueue(&r, 3 + j as u64);
            all.push(r);
        }
        // Decide on bank 0's pending set only; include one of thread 1's
        // requests hypothetically on bank 0 to compare ranks directly.
        let contested = vec![req_at_bank(20, 0, 0, 5, 0), req_at_bank(21, 1, 0, 6, 1)];
        s.on_enqueue(&contested[0], 0);
        s.on_enqueue(&contested[1], 1);
        let idx = s.pick(&contested, &ctx(10, None));
        assert_eq!(
            contested[idx].thread.index(),
            1,
            "thread with lower max bank load ranks first"
        );
    }
}
