//! Fault-injection wrapper for scheduling policies.
//!
//! [`ChaosScheduler`] decorates any [`Scheduler`] and, from a configured
//! cycle on, stops advancing its tick timer — modeling a scheduler whose
//! control logic wedges in a tight loop. The simulator's same-cycle
//! livelock guard must detect this as `SimError::Stalled`; the wrapper
//! exists so tests can prove that it does.
//!
//! Before the spin cycle the wrapper is transparent: every hook forwards
//! to the inner policy, and `next_tick` only clamps the inner timer so
//! the spin engages on time even for policies that never tick.

use crate::{PickContext, Scheduler, SystemView};
use tcm_chaos::{FaultKind, FaultSpec};
use tcm_dram::ServiceOutcome;
use tcm_telemetry::{DegradationAnomaly, Telemetry, TraceEvent};
use tcm_types::{Cycle, Request};

/// A [`Scheduler`] decorator that spins (stops advancing time) from a
/// configured cycle on. See the module docs.
#[derive(Debug)]
pub struct ChaosScheduler {
    inner: Box<dyn Scheduler>,
    spin_at: Cycle,
    telemetry: Telemetry,
    spin_reported: bool,
}

impl ChaosScheduler {
    /// Wraps `inner`, arming the spin to engage at cycle `spin_at`.
    pub fn new(inner: Box<dyn Scheduler>, spin_at: Cycle) -> Self {
        Self {
            inner,
            spin_at,
            telemetry: Telemetry::disabled(),
            spin_reported: false,
        }
    }

    /// The cycle at which the spin engages.
    pub fn spin_at(&self) -> Cycle {
        self.spin_at
    }
}

impl Scheduler for ChaosScheduler {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        self.inner.pick(pending, ctx)
    }

    fn on_enqueue(&mut self, req: &Request, now: Cycle) {
        self.inner.on_enqueue(req, now);
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        remaining_same_bank: &[Request],
        now: Cycle,
    ) {
        self.inner.on_service(outcome, remaining_same_bank, now);
    }

    fn on_complete(&mut self, req: &Request, now: Cycle) {
        self.inner.on_complete(req, now);
    }

    /// Before the spin cycle: the inner timer, clamped so a tick lands at
    /// `spin_at` even if the inner policy never ticks. From the spin
    /// cycle on: `Some(now)` — a timer that refuses to advance, which the
    /// simulator's livelock guard flags as a stall.
    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        if now >= self.spin_at {
            return Some(now);
        }
        match self.inner.next_tick(now) {
            Some(t) => Some(t.min(self.spin_at)),
            None => Some(self.spin_at),
        }
    }

    fn tick(&mut self, now: Cycle, view: &SystemView<'_>) {
        if now >= self.spin_at && !self.spin_reported {
            self.spin_reported = true;
            self.telemetry.emit(|| TraceEvent::ChaosInjected {
                cycle: now,
                kind: FaultKind::SchedulerSpin,
            });
        }
        self.inner.tick(now, view);
    }

    fn set_thread_weights(&mut self, weights: &[f64]) {
        self.inner.set_thread_weights(weights);
    }

    fn inject_monitor_fault(&mut self, fault: &FaultSpec) {
        self.inner.inject_monitor_fault(fault);
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        self.inner.attach_telemetry(telemetry);
    }

    fn degradation_events(&self) -> &[DegradationAnomaly] {
        self.inner.degradation_events()
    }

    fn quantum_exchange(&mut self, now: Cycle) -> Option<crate::MonitorSample> {
        self.inner.quantum_exchange(now)
    }

    fn apply_broadcast(&mut self, plan: &crate::ClusterPlan, now: Cycle) {
        self.inner.apply_broadcast(plan, now);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, req};
    use crate::FrFcfs;

    #[test]
    fn transparent_before_spin_cycle() {
        let mut chaos = ChaosScheduler::new(Box::new(FrFcfs::new()), 1_000);
        let mut plain = FrFcfs::new();
        assert_eq!(chaos.name(), plain.name());
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 2, 5)];
        let c = ctx(10, Some(2));
        assert_eq!(chaos.pick(&pending, &c), plain.pick(&pending, &c));
    }

    #[test]
    fn next_tick_clamps_to_spin_cycle() {
        let chaos = ChaosScheduler::new(Box::new(FrFcfs::new()), 1_000);
        // FrFcfs has no timer; the wrapper supplies the spin cycle.
        assert_eq!(chaos.next_tick(0), Some(1_000));
        assert_eq!(chaos.next_tick(999), Some(1_000));
    }

    #[test]
    fn spin_refuses_to_advance_time() {
        let chaos = ChaosScheduler::new(Box::new(FrFcfs::new()), 1_000);
        assert_eq!(chaos.next_tick(1_000), Some(1_000));
        assert_eq!(chaos.next_tick(5_000), Some(5_000), "frozen at `now` forever");
        assert_eq!(chaos.spin_at(), 1_000);
    }
}
