//! Oldest-first scheduling (FCFS).

use crate::select::{age_key, pick_max_by_key};
use crate::{PickContext, Scheduler};
use tcm_types::Request;

/// First-come-first-served: service the oldest request, ignoring
/// row-buffer state and threads entirely.
///
/// Not evaluated in the paper's headline results but useful as the
/// no-policy floor: it sacrifices both DRAM throughput (no row-hit
/// preference) and thread-awareness.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn pick(&mut self, pending: &[Request], _ctx: &PickContext) -> usize {
        pick_max_by_key(pending, age_key)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, req};

    #[test]
    fn always_picks_oldest() {
        let mut s = Fcfs::new();
        let pending = vec![req(2, 0, 1, 30), req(0, 1, 2, 10), req(1, 2, 3, 20)];
        assert_eq!(s.pick(&pending, &ctx(100, Some(3))), 1);
    }

    #[test]
    fn ignores_row_hits() {
        let mut s = Fcfs::new();
        // Row 5 open; the row-hit request is younger and must NOT win.
        let pending = vec![req(0, 0, 1, 10), req(1, 1, 5, 20)];
        assert_eq!(s.pick(&pending, &ctx(100, Some(5))), 0);
    }
}
