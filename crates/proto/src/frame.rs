//! Length-prefixed framing: `tcmp1 <len>\n<payload>\n`.
//!
//! The header line is ASCII (`tcmp1`, a space, the payload byte length
//! in decimal), followed by exactly `len` payload bytes and a single
//! trailing newline. A reader therefore never scans the payload for
//! delimiters — JSON strings may contain anything — while a captured
//! stream still reads as line-oriented text.

use std::io::{self, BufRead, Write};

/// Frame header magic; doubles as the protocol-generation marker.
pub const MAGIC: &str = "tcmp1";

/// Hard upper bound on a single frame's payload, protecting both peers
/// from a corrupt or hostile length header.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Writes one frame and flushes the stream.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds limit", payload.len()),
        ));
    }
    write!(w, "{MAGIC} {}\n{payload}\n", payload.len())?;
    w.flush()
}

/// Reads one frame, returning `None` on a clean end-of-stream (EOF at a
/// frame boundary). EOF mid-frame, a bad header, an oversized length or
/// non-UTF-8 payload all surface as [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches('\n');
    let len: usize = header
        .strip_prefix(MAGIC)
        .and_then(|rest| rest.strip_prefix(' '))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame header: {header:?}"),
            )
        })?;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len + 1]; // + trailing newline
    r.read_exact(&mut payload)?;
    if payload.pop() != Some(b'\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame missing trailing newline",
        ));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_including_newlines_in_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "line1\nline2").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"a\":1}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "line1\nline2");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_and_corrupt_frames_are_loud() {
        // EOF mid-payload.
        let mut r = Cursor::new(b"tcmp1 10\nshort".to_vec());
        assert!(read_frame(&mut r).is_err());
        // Garbage header.
        let mut r = Cursor::new(b"hello 3\nabc\n".to_vec());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Oversized length never allocates.
        let mut r = Cursor::new(format!("tcmp1 {}\n", usize::MAX).into_bytes());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
