//! Typed request/response messages and their JSON encoding.
//!
//! Every encoded message is one JSON object with a `"v"` protocol
//! version and a `"type"` tag; decoding rejects unknown versions and
//! tags loudly. Floats travel as `f64::to_bits` integers and booleans
//! as `0`/`1` (see [`crate::json`]).

use crate::json::{self, Value};
use crate::PROTO_VERSION;
use std::fmt::Write as _;

/// A malformed or version-incompatible message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// A client-to-daemon request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job; answered with `Submitted`, `QueueFull` or
    /// `Draining`.
    SubmitJob(JobSpec),
    /// Report job state — one job by id, or every known job.
    JobStatus {
        /// The job to report, or `None` for all jobs.
        id: Option<u64>,
    },
    /// Cancel a queued or running job.
    CancelJob {
        /// The job to cancel.
        id: u64,
    },
    /// Subscribe this connection to a job's streamed [`Event`]s; the
    /// stream ends with `JobDone`.
    Watch {
        /// The job to watch.
        id: u64,
    },
    /// Ask the daemon to drain: stop admitting, finish or checkpoint
    /// in-flight cells, flush the WAL, and exit 0.
    Drain,
    /// Fetch the daemon's metrics in Prometheus text exposition format;
    /// answered with [`Response::Metrics`].
    Metrics,
}

/// What to run and under which SLOs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Priority class, 0 = most urgent; FIFO within a class.
    pub priority: u8,
    /// Wall-clock deadline for the whole job, after which in-flight
    /// cells are cancelled and the job fails as timed out.
    pub deadline_ms: Option<u64>,
    /// Per-cell attempt budget for timeout retries (minimum 1).
    pub max_attempts: u32,
    /// The work itself.
    pub kind: JobKind,
}

/// The kinds of work the daemon runs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// A policy × workload × seed sweep grid.
    Sweep(SweepSpec),
    /// A continuous seeded chaos campaign reporting detector coverage.
    ChaosSoak(SoakSpec),
}

/// Declarative sweep grid (the daemon resolves names to engine types).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Policy names (`fcfs`, `fr-fcfs`, `stfm`, `par-bs`, `atlas`,
    /// `fqm`, `tcm`); empty = the paper lineup.
    pub policies: Vec<String>,
    /// Workloads on the grid's workload axis.
    pub workloads: Vec<WorkloadRef>,
    /// Simulator-seed axis (empty = the canonical `[0]`).
    pub seeds: Vec<u64>,
    /// Simulated cycles per cell.
    pub horizon: u64,
    /// Memory-system topology spec (`"4"`, `"2x2"`, `"3+1"`…); `None` =
    /// the paper baseline.
    pub topology: Option<String>,
    /// Whether to capture telemetry and stream per-cell
    /// [`Event::Telemetry`] summaries (observation-only; results are
    /// bit-identical either way).
    pub telemetry: bool,
}

/// A workload on the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadRef {
    /// A named Table 5 category (`A`–`D`).
    Named(String),
    /// A seeded synthetic mix.
    Random {
        /// Generator seed.
        seed: u64,
        /// Thread count.
        threads: u64,
        /// Memory intensity as an `f64` bit pattern.
        intensity_bits: u64,
    },
}

/// A chaos-soak campaign: seeded fault-injection rounds, each checking
/// every applicable fault class against its mapped detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakSpec {
    /// Base seed; round `r` uses `seed ^ r`.
    pub seed: u64,
    /// Rounds to run.
    pub rounds: u32,
    /// Simulated cycles per injection run.
    pub horizon: u64,
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a complete, durable result.
    Done,
    /// Finished with failed (quarantined) cells or a missed deadline.
    Failed,
    /// Cancelled by request or drain before completion.
    Cancelled,
}

impl JobState {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn from_str(s: &str) -> Result<Self, ProtoError> {
        Ok(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            other => return Err(err(format!("unknown job state `{other}`"))),
        })
    }
}

/// One job's reported status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatusInfo {
    /// Job id.
    pub id: u64,
    /// Priority class.
    pub priority: u8,
    /// Current lifecycle state.
    pub state: JobState,
    /// Human detail: progress counts, `cell-failure` lines (verbatim
    /// sweep format), quarantine notes.
    pub detail: String,
    /// Live work-unit progress, when the daemon tracks it. Optional on
    /// the wire (`tcmp1`-compatible: old peers ignore the field, old
    /// daemons simply never send it).
    pub progress: Option<JobProgress>,
}

/// Work-unit progress for one job: sweep cells, or soak rounds mapped
/// onto the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobProgress {
    /// Total work units in the job (grid cells, or soak rounds).
    pub total: u64,
    /// Units finished successfully this far (including resumed ones).
    pub done: u64,
    /// Units that exhausted their retry budget and failed.
    pub failed: u64,
    /// Units restored from checkpoint rather than recomputed.
    pub resumed: u64,
}

/// Daemon self-description attached to `Status` responses. Optional on
/// the wire: pre-observability daemons never send it and old clients
/// ignore it, so the extension stays within `tcmp1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Daemon build version (crate version string).
    pub version: String,
    /// Daemon process id.
    pub pid: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// The Unix socket path the daemon is serving on.
    pub socket: String,
    /// Configured job-queue capacity.
    pub queue_capacity: u64,
    /// Jobs currently queued (not yet running).
    pub queue_depth: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Workers currently executing a job.
    pub workers_busy: u64,
    /// Whether the daemon is draining (no new admissions).
    pub draining: bool,
}

/// A streamed event on a `Watch` subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// One sweep cell finished; metrics as `f64` bit patterns.
    CellResult {
        /// Owning job.
        job: u64,
        /// Policy label.
        policy: String,
        /// Workload name.
        workload: String,
        /// Seed-axis value.
        seed: u64,
        /// Weighted speedup bits.
        ws_bits: u64,
        /// Harmonic speedup bits.
        hs_bits: u64,
        /// Maximum slowdown bits.
        ms_bits: u64,
        /// Whether the cell was restored from a checkpoint rather than
        /// simulated in this daemon lifetime.
        resumed: bool,
    },
    /// One sweep cell exhausted its retry budget; `line` is the
    /// engine's stable `cell-failure …` format, verbatim.
    CellFailure {
        /// Owning job.
        job: u64,
        /// The structured failure line.
        line: String,
    },
    /// Telemetry digest for one finished cell (counters verbatim,
    /// gauges as bit patterns).
    Telemetry {
        /// Owning job.
        job: u64,
        /// `(name, value)` counters, name-sorted.
        counters: Vec<(String, u64)>,
        /// `(name, f64::to_bits(value))` gauges, name-sorted.
        gauge_bits: Vec<(String, u64)>,
    },
    /// One chaos-soak round finished.
    SoakRound {
        /// Owning job.
        job: u64,
        /// Round index (0-based).
        round: u32,
        /// Fault classes whose mapped detector fired.
        detected: u32,
        /// Fault classes injected this round.
        classes: u32,
    },
    /// Terminal event: the job reached a final state.
    JobDone {
        /// Owning job.
        job: u64,
        /// Final state (`Done`, `Failed` or `Cancelled`).
        state: JobState,
        /// Final detail line.
        detail: String,
    },
}

/// A daemon-to-client response (direct reply or streamed event).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Job admitted with this id.
    Submitted {
        /// Assigned job id (stable across daemon restarts via the WAL).
        id: u64,
    },
    /// Typed backpressure: the queue is at capacity; resubmit later.
    QueueFull {
        /// The configured queue capacity.
        capacity: u64,
    },
    /// Status report for the requested job(s).
    Status {
        /// One entry per known job, id-ordered.
        jobs: Vec<JobStatusInfo>,
        /// Daemon self-description (absent from pre-observability
        /// daemons; old clients ignore it).
        server: Option<ServerInfo>,
    },
    /// Cancellation outcome.
    Cancelled {
        /// The requested job id.
        id: u64,
        /// Whether the job existed and was still cancellable.
        found: bool,
    },
    /// The daemon is draining: no new work is admitted.
    Draining,
    /// The request failed.
    Error {
        /// What went wrong.
        message: String,
    },
    /// The daemon's metrics in Prometheus text exposition format.
    Metrics {
        /// The full exposition text (`# TYPE` lines + samples).
        text: String,
    },
    /// A streamed `Watch` event.
    Event(Event),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_head(out: &mut String, ty: &str) {
    let _ = write!(out, "{{\"v\":{PROTO_VERSION},\"type\":\"{ty}\"");
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":");
    json::write_str(out, value);
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    let _ = write!(out, ",\"{key}\":{value}");
}

fn push_pairs_field(out: &mut String, key: &str, pairs: &[(String, u64)]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json::write_str(out, name);
        let _ = write!(out, ",{value}]");
    }
    out.push(']');
}

impl JobSpec {
    /// Appends this spec as a JSON object — also the representation the
    /// daemon's write-ahead log embeds in `submit` records.
    pub fn encode_body(&self, out: &mut String) {
        out.push('{');
        let _ = write!(out, "\"priority\":{}", self.priority);
        if let Some(ms) = self.deadline_ms {
            let _ = write!(out, ",\"deadline_ms\":{ms}");
        }
        let _ = write!(out, ",\"max_attempts\":{}", self.max_attempts);
        match &self.kind {
            JobKind::Sweep(spec) => {
                out.push_str(",\"sweep\":{\"policies\":[");
                for (i, p) in spec.policies.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_str(out, p);
                }
                out.push_str("],\"workloads\":[");
                for (i, w) in spec.workloads.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match w {
                        WorkloadRef::Named(name) => {
                            out.push_str("{\"named\":");
                            json::write_str(out, name);
                            out.push('}');
                        }
                        WorkloadRef::Random {
                            seed,
                            threads,
                            intensity_bits,
                        } => {
                            let _ = write!(
                                out,
                                "{{\"seed\":{seed},\"threads\":{threads},\
                                 \"intensity_bits\":{intensity_bits}}}"
                            );
                        }
                    }
                }
                out.push_str("],\"seeds\":[");
                for (i, s) in spec.seeds.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{s}");
                }
                let _ = write!(out, "],\"horizon\":{}", spec.horizon);
                if let Some(topo) = &spec.topology {
                    out.push_str(",\"topology\":");
                    json::write_str(out, topo);
                }
                let _ = write!(out, ",\"telemetry\":{}}}", u64::from(spec.telemetry));
            }
            JobKind::ChaosSoak(spec) => {
                let _ = write!(
                    out,
                    ",\"soak\":{{\"seed\":{},\"rounds\":{},\"horizon\":{}}}",
                    spec.seed, spec.rounds, spec.horizon
                );
            }
        }
        out.push('}');
    }

    /// Decodes a spec object produced by [`JobSpec::encode_body`].
    pub fn from_value(v: &Value) -> Result<Self, ProtoError> {
        let priority = v
            .field("priority")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("job spec missing priority"))?;
        let priority =
            u8::try_from(priority).map_err(|_| err("priority must fit in a byte"))?;
        let deadline_ms = match v.field("deadline_ms") {
            Some(d) => Some(d.as_u64().ok_or_else(|| err("bad deadline_ms"))?),
            None => None,
        };
        let max_attempts = v
            .field("max_attempts")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("job spec missing max_attempts"))?;
        let max_attempts =
            u32::try_from(max_attempts).map_err(|_| err("max_attempts out of range"))?;
        let kind = if let Some(sweep) = v.field("sweep") {
            let workloads = sweep
                .field("workloads")
                .and_then(Value::as_arr)
                .ok_or_else(|| err("sweep spec missing workloads"))?
                .iter()
                .map(|w| {
                    if let Some(name) = w.field("named").and_then(Value::as_str) {
                        Ok(WorkloadRef::Named(name.to_string()))
                    } else {
                        Ok(WorkloadRef::Random {
                            seed: w
                                .field("seed")
                                .and_then(Value::as_u64)
                                .ok_or_else(|| err("random workload missing seed"))?,
                            threads: w
                                .field("threads")
                                .and_then(Value::as_u64)
                                .ok_or_else(|| err("random workload missing threads"))?,
                            intensity_bits: w
                                .field("intensity_bits")
                                .and_then(Value::as_u64)
                                .ok_or_else(|| err("random workload missing intensity"))?,
                        })
                    }
                })
                .collect::<Result<Vec<_>, ProtoError>>()?;
            JobKind::Sweep(SweepSpec {
                policies: sweep
                    .field("policies")
                    .and_then(Value::str_array)
                    .ok_or_else(|| err("sweep spec missing policies"))?,
                workloads,
                seeds: sweep
                    .field("seeds")
                    .and_then(Value::u64_array)
                    .ok_or_else(|| err("sweep spec missing seeds"))?,
                horizon: sweep
                    .field("horizon")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| err("sweep spec missing horizon"))?,
                topology: sweep
                    .field("topology")
                    .map(|t| {
                        t.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| err("bad topology"))
                    })
                    .transpose()?,
                telemetry: sweep
                    .field("telemetry")
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
                    != 0,
            })
        } else if let Some(soak) = v.field("soak") {
            JobKind::ChaosSoak(SoakSpec {
                seed: soak
                    .field("seed")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| err("soak spec missing seed"))?,
                rounds: soak
                    .field("rounds")
                    .and_then(Value::as_u64)
                    .and_then(|r| u32::try_from(r).ok())
                    .ok_or_else(|| err("soak spec missing rounds"))?,
                horizon: soak
                    .field("horizon")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| err("soak spec missing horizon"))?,
            })
        } else {
            return Err(err("job spec names neither sweep nor soak"));
        };
        Ok(JobSpec {
            priority,
            deadline_ms,
            max_attempts,
            kind,
        })
    }
}

impl Request {
    /// Encodes this request as one frame payload.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Request::SubmitJob(spec) => {
                push_head(&mut out, "submit_job");
                out.push_str(",\"spec\":");
                spec.encode_body(&mut out);
            }
            Request::JobStatus { id } => {
                push_head(&mut out, "job_status");
                if let Some(id) = id {
                    push_u64_field(&mut out, "id", *id);
                }
            }
            Request::CancelJob { id } => {
                push_head(&mut out, "cancel_job");
                push_u64_field(&mut out, "id", *id);
            }
            Request::Watch { id } => {
                push_head(&mut out, "watch");
                push_u64_field(&mut out, "id", *id);
            }
            Request::Drain => push_head(&mut out, "drain"),
            Request::Metrics => push_head(&mut out, "metrics"),
        }
        out.push('}');
        out
    }

    /// Decodes a frame payload into a request.
    pub fn decode(text: &str) -> Result<Self, ProtoError> {
        let v = json::parse(text).ok_or_else(|| err("unparsable request"))?;
        check_version(&v)?;
        let ty = v
            .field("type")
            .and_then(Value::as_str)
            .ok_or_else(|| err("request missing type"))?;
        Ok(match ty {
            "submit_job" => Request::SubmitJob(JobSpec::from_value(
                v.field("spec").ok_or_else(|| err("submit missing spec"))?,
            )?),
            "job_status" => Request::JobStatus {
                id: v.field("id").and_then(Value::as_u64),
            },
            "cancel_job" => Request::CancelJob {
                id: need_u64(&v, "id")?,
            },
            "watch" => Request::Watch {
                id: need_u64(&v, "id")?,
            },
            "drain" => Request::Drain,
            "metrics" => Request::Metrics,
            other => return Err(err(format!("unknown request type `{other}`"))),
        })
    }
}

impl Response {
    /// Encodes this response as one frame payload.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Response::Submitted { id } => {
                push_head(&mut out, "submitted");
                push_u64_field(&mut out, "id", *id);
            }
            Response::QueueFull { capacity } => {
                push_head(&mut out, "queue_full");
                push_u64_field(&mut out, "capacity", *capacity);
            }
            Response::Status { jobs, server } => {
                push_head(&mut out, "status");
                out.push_str(",\"jobs\":[");
                for (i, j) in jobs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"id\":{},\"priority\":{},\"state\":\"{}\",\"detail\":",
                        j.id,
                        j.priority,
                        j.state.as_str()
                    );
                    json::write_str(&mut out, &j.detail);
                    if let Some(p) = &j.progress {
                        let _ = write!(
                            out,
                            ",\"progress\":{{\"total\":{},\"done\":{},\
                             \"failed\":{},\"resumed\":{}}}",
                            p.total, p.done, p.failed, p.resumed
                        );
                    }
                    out.push('}');
                }
                out.push(']');
                if let Some(s) = server {
                    out.push_str(",\"server\":{\"version\":");
                    json::write_str(&mut out, &s.version);
                    let _ = write!(out, ",\"pid\":{},\"uptime_ms\":{}", s.pid, s.uptime_ms);
                    out.push_str(",\"socket\":");
                    json::write_str(&mut out, &s.socket);
                    let _ = write!(
                        out,
                        ",\"queue_capacity\":{},\"queue_depth\":{},\"workers\":{},\
                         \"workers_busy\":{},\"draining\":{}}}",
                        s.queue_capacity,
                        s.queue_depth,
                        s.workers,
                        s.workers_busy,
                        u64::from(s.draining)
                    );
                }
            }
            Response::Cancelled { id, found } => {
                push_head(&mut out, "cancelled");
                push_u64_field(&mut out, "id", *id);
                push_u64_field(&mut out, "found", u64::from(*found));
            }
            Response::Draining => push_head(&mut out, "draining"),
            Response::Error { message } => {
                push_head(&mut out, "error");
                push_str_field(&mut out, "message", message);
            }
            Response::Metrics { text } => {
                push_head(&mut out, "metrics");
                push_str_field(&mut out, "text", text);
            }
            Response::Event(event) => match event {
                Event::CellResult {
                    job,
                    policy,
                    workload,
                    seed,
                    ws_bits,
                    hs_bits,
                    ms_bits,
                    resumed,
                } => {
                    push_head(&mut out, "cell_result");
                    push_u64_field(&mut out, "job", *job);
                    push_str_field(&mut out, "policy", policy);
                    push_str_field(&mut out, "workload", workload);
                    push_u64_field(&mut out, "seed", *seed);
                    push_u64_field(&mut out, "ws_bits", *ws_bits);
                    push_u64_field(&mut out, "hs_bits", *hs_bits);
                    push_u64_field(&mut out, "ms_bits", *ms_bits);
                    push_u64_field(&mut out, "resumed", u64::from(*resumed));
                }
                Event::CellFailure { job, line } => {
                    push_head(&mut out, "cell_failure");
                    push_u64_field(&mut out, "job", *job);
                    push_str_field(&mut out, "line", line);
                }
                Event::Telemetry {
                    job,
                    counters,
                    gauge_bits,
                } => {
                    push_head(&mut out, "telemetry");
                    push_u64_field(&mut out, "job", *job);
                    push_pairs_field(&mut out, "counters", counters);
                    push_pairs_field(&mut out, "gauge_bits", gauge_bits);
                }
                Event::SoakRound {
                    job,
                    round,
                    detected,
                    classes,
                } => {
                    push_head(&mut out, "soak_round");
                    push_u64_field(&mut out, "job", *job);
                    push_u64_field(&mut out, "round", u64::from(*round));
                    push_u64_field(&mut out, "detected", u64::from(*detected));
                    push_u64_field(&mut out, "classes", u64::from(*classes));
                }
                Event::JobDone { job, state, detail } => {
                    push_head(&mut out, "job_done");
                    push_u64_field(&mut out, "job", *job);
                    push_str_field(&mut out, "state", state.as_str());
                    push_str_field(&mut out, "detail", detail);
                }
            },
        }
        out.push('}');
        out
    }

    /// Decodes a frame payload into a response.
    pub fn decode(text: &str) -> Result<Self, ProtoError> {
        let v = json::parse(text).ok_or_else(|| err("unparsable response"))?;
        check_version(&v)?;
        let ty = v
            .field("type")
            .and_then(Value::as_str)
            .ok_or_else(|| err("response missing type"))?;
        Ok(match ty {
            "submitted" => Response::Submitted {
                id: need_u64(&v, "id")?,
            },
            "queue_full" => Response::QueueFull {
                capacity: need_u64(&v, "capacity")?,
            },
            "status" => Response::Status {
                jobs: v
                    .field("jobs")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| err("status missing jobs"))?
                    .iter()
                    .map(|j| {
                        let progress = match j.field("progress") {
                            Some(p) => Some(JobProgress {
                                total: need_u64(p, "total")?,
                                done: need_u64(p, "done")?,
                                failed: need_u64(p, "failed")?,
                                resumed: need_u64(p, "resumed")?,
                            }),
                            None => None,
                        };
                        Ok(JobStatusInfo {
                            id: need_u64(j, "id")?,
                            priority: u8::try_from(need_u64(j, "priority")?)
                                .map_err(|_| err("priority out of range"))?,
                            state: JobState::from_str(need_str(j, "state")?)?,
                            detail: need_str(j, "detail")?.to_string(),
                            progress,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?,
                server: match v.field("server") {
                    Some(s) => Some(ServerInfo {
                        version: need_str(s, "version")?.to_string(),
                        pid: need_u64(s, "pid")?,
                        uptime_ms: need_u64(s, "uptime_ms")?,
                        socket: need_str(s, "socket")?.to_string(),
                        queue_capacity: need_u64(s, "queue_capacity")?,
                        queue_depth: need_u64(s, "queue_depth")?,
                        workers: need_u64(s, "workers")?,
                        workers_busy: need_u64(s, "workers_busy")?,
                        draining: need_u64(s, "draining")? != 0,
                    }),
                    None => None,
                },
            },
            "cancelled" => Response::Cancelled {
                id: need_u64(&v, "id")?,
                found: need_u64(&v, "found")? != 0,
            },
            "draining" => Response::Draining,
            "error" => Response::Error {
                message: need_str(&v, "message")?.to_string(),
            },
            "metrics" => Response::Metrics {
                text: need_str(&v, "text")?.to_string(),
            },
            "cell_result" => Response::Event(Event::CellResult {
                job: need_u64(&v, "job")?,
                policy: need_str(&v, "policy")?.to_string(),
                workload: need_str(&v, "workload")?.to_string(),
                seed: need_u64(&v, "seed")?,
                ws_bits: need_u64(&v, "ws_bits")?,
                hs_bits: need_u64(&v, "hs_bits")?,
                ms_bits: need_u64(&v, "ms_bits")?,
                resumed: need_u64(&v, "resumed")? != 0,
            }),
            "cell_failure" => Response::Event(Event::CellFailure {
                job: need_u64(&v, "job")?,
                line: need_str(&v, "line")?.to_string(),
            }),
            "telemetry" => Response::Event(Event::Telemetry {
                job: need_u64(&v, "job")?,
                counters: need_pairs(&v, "counters")?,
                gauge_bits: need_pairs(&v, "gauge_bits")?,
            }),
            "soak_round" => Response::Event(Event::SoakRound {
                job: need_u64(&v, "job")?,
                round: need_u32(&v, "round")?,
                detected: need_u32(&v, "detected")?,
                classes: need_u32(&v, "classes")?,
            }),
            "job_done" => Response::Event(Event::JobDone {
                job: need_u64(&v, "job")?,
                state: JobState::from_str(need_str(&v, "state")?)?,
                detail: need_str(&v, "detail")?.to_string(),
            }),
            other => return Err(err(format!("unknown response type `{other}`"))),
        })
    }
}

fn check_version(v: &Value) -> Result<(), ProtoError> {
    match v.field("v").and_then(Value::as_u64) {
        Some(PROTO_VERSION) => Ok(()),
        Some(other) => Err(err(format!(
            "protocol version {other} (this build speaks {PROTO_VERSION})"
        ))),
        None => Err(err("message missing protocol version")),
    }
}

fn need_u64(v: &Value, key: &str) -> Result<u64, ProtoError> {
    v.field(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| err(format!("missing integer field `{key}`")))
}

fn need_u32(v: &Value, key: &str) -> Result<u32, ProtoError> {
    u32::try_from(need_u64(v, key)?).map_err(|_| err(format!("field `{key}` out of range")))
}

fn need_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, ProtoError> {
    v.field(key)
        .and_then(Value::as_str)
        .ok_or_else(|| err(format!("missing string field `{key}`")))
}

fn need_pairs(v: &Value, key: &str) -> Result<Vec<(String, u64)>, ProtoError> {
    v.field(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| err(format!("missing array field `{key}`")))?
        .iter()
        .map(|pair| {
            let items = pair.as_arr().filter(|a| a.len() == 2);
            match items {
                Some([name, value]) => Ok((
                    name.as_str()
                        .ok_or_else(|| err("pair name must be a string"))?
                        .to_string(),
                    value
                        .as_u64()
                        .ok_or_else(|| err("pair value must be an integer"))?,
                )),
                _ => Err(err("pairs must be [name, value] arrays")),
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_sweep_spec() -> JobSpec {
        JobSpec {
            priority: 1,
            deadline_ms: Some(30_000),
            max_attempts: 3,
            kind: JobKind::Sweep(SweepSpec {
                policies: vec!["fr-fcfs".into(), "tcm".into()],
                workloads: vec![
                    WorkloadRef::Named("B".into()),
                    WorkloadRef::Random {
                        seed: 7,
                        threads: 4,
                        intensity_bits: 0.75f64.to_bits(),
                    },
                ],
                seeds: vec![0, 3],
                horizon: 200_000,
                topology: Some("2x2".into()),
                telemetry: true,
            }),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::SubmitJob(sample_sweep_spec()),
            Request::SubmitJob(JobSpec {
                priority: 0,
                deadline_ms: None,
                max_attempts: 1,
                kind: JobKind::ChaosSoak(SoakSpec {
                    seed: 42,
                    rounds: 5,
                    horizon: 100_000,
                }),
            }),
            Request::JobStatus { id: None },
            Request::JobStatus { id: Some(9) },
            Request::CancelJob { id: 3 },
            Request::Watch { id: 3 },
            Request::Drain,
            Request::Metrics,
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip_bit_identically() {
        let ws = 3.837_261_092_f64;
        let responses = [
            Response::Submitted { id: 12 },
            Response::QueueFull { capacity: 64 },
            Response::Status {
                jobs: vec![
                    JobStatusInfo {
                        id: 1,
                        priority: 2,
                        state: JobState::Running,
                        detail: "3/10 cells, 1 failure:\ncell-failure policy=\"TCM\" …".into(),
                        progress: Some(JobProgress {
                            total: 10,
                            done: 3,
                            failed: 1,
                            resumed: 2,
                        }),
                    },
                    JobStatusInfo {
                        id: 2,
                        priority: 0,
                        state: JobState::Queued,
                        detail: "queued".into(),
                        progress: None,
                    },
                ],
                server: Some(ServerInfo {
                    version: "0.1.0".into(),
                    pid: 4242,
                    uptime_ms: 123_456,
                    socket: "/tmp/tcm \"serve\".sock".into(),
                    queue_capacity: 64,
                    queue_depth: 1,
                    workers: 4,
                    workers_busy: 2,
                    draining: false,
                }),
            },
            Response::Status { jobs: vec![], server: None },
            Response::Cancelled { id: 4, found: true },
            Response::Draining,
            Response::Error {
                message: "unknown policy `foo`".into(),
            },
            Response::Metrics {
                text: "# TYPE tcm_serve_queue_depth gauge\ntcm_serve_queue_depth 3\n".into(),
            },
            Response::Event(Event::CellResult {
                job: 1,
                policy: "TCM".into(),
                workload: "B".into(),
                seed: 0,
                ws_bits: ws.to_bits(),
                hs_bits: (0.42f64).to_bits(),
                ms_bits: f64::NAN.to_bits(),
                resumed: true,
            }),
            Response::Event(Event::CellFailure {
                job: 1,
                line: "cell-failure policy=\"TCM\" workload=\"B\" seed=0 kind=timeout \
                       attempt=2 max_attempts=2 elapsed_ms=450 detail=\"…\""
                    .into(),
            }),
            Response::Event(Event::Telemetry {
                job: 1,
                counters: vec![("requests_total".into(), 9912)],
                gauge_bits: vec![("bw_share".into(), 0.31f64.to_bits())],
            }),
            Response::Event(Event::SoakRound {
                job: 2,
                round: 3,
                detected: 8,
                classes: 8,
            }),
            Response::Event(Event::JobDone {
                job: 1,
                state: JobState::Done,
                detail: "20/20 cells".into(),
            }),
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
        // NaN metric bits survive exactly (the PartialEq above compares
        // bit patterns, not float values).
        let encoded = Response::Event(Event::CellResult {
            job: 0,
            policy: "p".into(),
            workload: "w".into(),
            seed: 0,
            ws_bits: f64::NAN.to_bits(),
            hs_bits: 0,
            ms_bits: 0,
            resumed: false,
        })
        .encode();
        match Response::decode(&encoded).unwrap() {
            Response::Event(Event::CellResult { ws_bits, .. }) => {
                assert!(f64::from_bits(ws_bits).is_nan());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn optional_status_fields_stay_within_tcmp1() {
        // A pre-observability daemon's Status carries neither progress
        // nor a server block; it must still decode.
        let old = "{\"v\":1,\"type\":\"status\",\"jobs\":[{\"id\":1,\"priority\":0,\
                   \"state\":\"queued\",\"detail\":\"queued\"}]}";
        match Response::decode(old).unwrap() {
            Response::Status { jobs, server } => {
                assert_eq!(jobs.len(), 1);
                assert_eq!(jobs[0].progress, None);
                assert_eq!(server, None);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let frame = Request::Drain.encode().replace("\"v\":1", "\"v\":99");
        let e = Request::decode(&frame).unwrap_err();
        assert!(e.0.contains("version 99"), "{e}");
        assert!(Request::decode("{\"type\":\"drain\"}").is_err(), "missing v");
        assert!(Request::decode("{\"v\":1,\"type\":\"launch_missiles\"}").is_err());
    }
}
