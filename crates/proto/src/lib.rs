//! `tcm-proto` — the versioned wire protocol between the `tcm-serve`
//! daemon and its clients.
//!
//! The protocol is deliberately minimal and dependency-free:
//!
//! * **Framing** ([`frame`]): length-prefixed JSONL over any byte
//!   stream (in practice a Unix-domain socket). Each frame is
//!   `tcmp1 <len>\n<payload>\n` — the textual header makes a captured
//!   stream greppable while the explicit length makes reads exact.
//! * **JSON subset** ([`json`]): objects, arrays, strings and unsigned
//!   integers — the same subset the sweep checkpoint format uses. All
//!   floats travel as IEEE-754 bit patterns (`f64::to_bits`), so every
//!   metric survives the wire **bit-identically**; booleans travel as
//!   `0`/`1`.
//! * **Messages** ([`Request`], [`Response`]): submit/status/cancel/
//!   watch/drain requests and their typed responses, including the
//!   streamed per-cell events a `Watch` subscription receives.
//!
//! Every frame payload is a JSON object carrying a `"v"` field; peers
//! reject frames whose version they do not speak (see
//! [`PROTO_VERSION`]). The crate knows nothing about sockets, jobs or
//! scheduling — it only defines the bytes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

pub mod frame;
pub mod json;
mod msg;

pub use frame::{read_frame, write_frame, MAX_FRAME_LEN};
pub use msg::{
    Event, JobKind, JobProgress, JobSpec, JobState, JobStatusInfo, ProtoError, Request, Response,
    ServerInfo, SoakSpec, SweepSpec, WorkloadRef,
};

/// Protocol version spoken by this build. Bumped on any incompatible
/// change to the frame format or message schema.
pub const PROTO_VERSION: u64 = 1;
