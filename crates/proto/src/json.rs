//! The protocol's JSON subset: objects, arrays, strings, and unsigned
//! integers — exactly what the sweep checkpoint format uses, for the
//! same reason: floats travel as `f64::to_bits` integers so nothing is
//! lost to decimal round-tripping, and booleans travel as `0`/`1`.
//!
//! Shared by message encoding ([`crate::Request`]/[`crate::Response`])
//! and by the `tcm-serve` write-ahead log, which reuses this parser for
//! its records.

/// A parsed JSON value (subset: no floats, no booleans, no null).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
    /// An array.
    Arr(Vec<Value>),
    /// A string.
    Str(String),
    /// An unsigned integer.
    UInt(u64),
}

impl Value {
    /// The named field of an object.
    pub fn field<'a>(&'a self, name: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of integers.
    pub fn u64_array(&self) -> Option<Vec<u64>> {
        match self {
            Value::Arr(items) => items.iter().map(Value::as_u64).collect(),
            _ => None,
        }
    }

    /// An array of strings.
    pub fn str_array(&self) -> Option<Vec<String>> {
        match self {
            Value::Arr(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing bytes after the value are
/// rejected (every frame payload is exactly one document).
pub fn parse(text: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    (p.pos == p.bytes.len()).then_some(v)
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Some(Value::Str(self.string()?)),
            b'0'..=b'9' => self.uint(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Value::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let hex = std::str::from_utf8(hex).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn uint(&mut self) -> Option<Value> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_digit)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Value::UInt)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_subset() {
        let v = parse(r#"{"a":1,"b":[2,"x"],"c":{"d":"\n\"A"}}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.field("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.field("c").unwrap().field("d").unwrap().as_str(), Some("\n\"A"));
    }

    #[test]
    fn rejects_trailing_garbage_and_unknown_forms() {
        assert!(parse("{} extra").is_none());
        assert!(parse("true").is_none(), "booleans travel as 0/1");
        assert!(parse("-1").is_none(), "unsigned only");
        assert!(parse("1.5").is_none(), "floats travel as bit patterns");
    }

    #[test]
    fn string_escaping_round_trips() {
        let ugly = "a\"b\\c\nd\te\u{7}f";
        let mut out = String::new();
        write_str(&mut out, ugly);
        assert_eq!(parse(&out).unwrap().as_str(), Some(ugly));
    }
}
