//! Foundational types shared by every crate in the TCM reproduction.
//!
//! This crate defines the vocabulary of the simulated machine:
//!
//! * strongly-typed identifiers for threads, channels, banks and rows
//!   ([`ThreadId`], [`ChannelId`], [`BankId`], [`Row`]),
//! * the unit of work that flows through the memory system
//!   ([`Request`] and [`MemAddress`]),
//! * the static machine description ([`SystemConfig`], [`DramTiming`]) with
//!   the paper's baseline configuration (Table 3 of the paper), and
//! * shared error types.
//!
//! Everything here is plain data: `Copy` where cheap, free of I/O concerns,
//! and free of simulation logic. Higher-level crates (`tcm-dram`,
//! `tcm-cpu`, `tcm-sched`, `tcm-core`, `tcm-sim`) build on these types.
//!
//! # Example
//!
//! ```
//! use tcm_types::{SystemConfig, ThreadId};
//!
//! let cfg = SystemConfig::paper_baseline();
//! assert_eq!(cfg.num_threads, 24);
//! assert_eq!(cfg.total_banks(), 16);
//! let t = ThreadId::new(3);
//! assert_eq!(t.index(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

mod cancel;
mod config;
mod error;
mod ids;
mod request;

pub use cancel::CancelToken;
pub use config::{DramTiming, SystemConfig, SystemConfigBuilder, Topology, MAX_BANKS_PER_CHANNEL};
pub use error::{ConfigError, Invariant, InvariantViolation, SimError, StallReport};
pub use ids::{BankId, ChannelId, ControllerId, GlobalBank, Row, ThreadId};
pub use request::{MemAddress, Request, RequestId, RowState};

/// Simulation time, measured in processor core cycles.
///
/// The simulated core runs at 5 GHz (0.2 ns per cycle), matching the
/// paper's round-trip L2 miss latencies of 200/300/400 cycles for
/// row-hit/closed/conflict accesses.
pub type Cycle = u64;
