//! Memory requests: the unit of work flowing from cores to DRAM banks.

use crate::{BankId, ChannelId, Cycle, GlobalBank, Row, ThreadId};
use std::fmt;

/// Globally unique, monotonically increasing request identifier.
///
/// Assigned by the simulator at injection time; useful for FCFS age
/// tie-breaking (older request = smaller id) and for correlating
/// completion events with their originating core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from its raw sequence number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw sequence number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A row-granularity DRAM address: `(channel, bank, row)`.
///
/// Column bits are not modeled: every request transfers one 32-byte cache
/// block and row-buffer behavior only depends on whether consecutive
/// accesses touch the *same row*, so row granularity captures everything
/// the evaluated scheduling policies can observe.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct MemAddress {
    /// Memory channel (one independent controller per channel).
    pub channel: ChannelId,
    /// Bank within the channel.
    pub bank: BankId,
    /// Row within the bank.
    pub row: Row,
}

impl MemAddress {
    /// Creates an address from its components.
    #[inline]
    pub const fn new(channel: ChannelId, bank: BankId, row: Row) -> Self {
        Self { channel, bank, row }
    }

    /// The globally unique bank this address maps to.
    #[inline]
    pub const fn global_bank(self) -> GlobalBank {
        GlobalBank::new(self.channel, self.bank)
    }
}

impl fmt::Display for MemAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}:{}", self.channel, self.bank, self.row)
    }
}

/// The row-buffer state a request encounters when it reaches its bank.
///
/// Determines the DRAM access latency (see
/// [`DramTiming`](crate::DramTiming)):
/// a *hit* needs only a column access, *closed* needs an activate first,
/// and a *conflict* additionally needs a precharge of the currently open
/// (different) row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowState {
    /// The addressed row is already open in the row-buffer.
    Hit,
    /// The bank is precharged; no row is open.
    Closed,
    /// A different row is open and must be precharged first.
    Conflict,
}

impl fmt::Display for RowState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RowState::Hit => "hit",
            RowState::Closed => "closed",
            RowState::Conflict => "conflict",
        };
        f.write_str(s)
    }
}

/// One outstanding last-level-cache miss traveling through the memory
/// system.
///
/// Requests are read requests for a 32-byte cache block (the paper's
/// request buffer prioritizes reads over writes; like most scheduling
/// studies we model the read path, which is what stalls cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Unique id; smaller = older (injection order).
    pub id: RequestId,
    /// The thread (core) that issued the miss.
    pub thread: ThreadId,
    /// Target DRAM location.
    pub addr: MemAddress,
    /// Cycle at which the request entered the controller's request buffer.
    pub issued_at: Cycle,
}

impl Request {
    /// Creates a request.
    #[inline]
    pub const fn new(id: RequestId, thread: ThreadId, addr: MemAddress, issued_at: Cycle) -> Self {
        Self {
            id,
            thread,
            addr,
            issued_at,
        }
    }

    /// `true` if this request is older than `other` (arrived earlier;
    /// ties broken by injection sequence, which is unique).
    #[inline]
    pub fn is_older_than(&self, other: &Request) -> bool {
        (self.issued_at, self.id) < (other.issued_at, other.id)
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} -> {} @{}]", self.id, self.thread, self.addr, self.issued_at)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn req(id: u64, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(0),
            MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(0)),
            at,
        )
    }

    #[test]
    fn age_ordering_uses_issue_cycle_then_id() {
        assert!(req(5, 10).is_older_than(&req(1, 20)));
        assert!(req(1, 10).is_older_than(&req(2, 10)));
        assert!(!req(2, 10).is_older_than(&req(1, 10)));
        assert!(!req(1, 10).is_older_than(&req(1, 10)));
    }

    #[test]
    fn address_global_bank_matches_components() {
        let a = MemAddress::new(ChannelId::new(2), BankId::new(3), Row::new(9));
        assert_eq!(a.global_bank().channel, ChannelId::new(2));
        assert_eq!(a.global_bank().bank, BankId::new(3));
    }

    #[test]
    fn display_forms_are_informative() {
        let r = req(4, 77);
        let s = r.to_string();
        assert!(s.contains("req4"));
        assert!(s.contains("T0"));
        assert!(s.contains("@77"));
        assert_eq!(RowState::Conflict.to_string(), "conflict");
    }

    #[test]
    fn row_state_equality() {
        assert_eq!(RowState::Hit, RowState::Hit);
        assert_ne!(RowState::Hit, RowState::Closed);
        assert_ne!(RowState::Closed, RowState::Conflict);
    }
}
