//! Strongly-typed identifiers for the simulated machine's resources.
//!
//! Newtypes keep thread indices, channel indices, bank indices and row
//! numbers from being accidentally mixed (C-NEWTYPE). All identifiers are
//! dense `usize` indices so they can be used directly to index `Vec`s.

use std::fmt;

macro_rules! index_newtype {
    ($(#[$meta:meta])* $name:ident, $display:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
           
        )]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a dense index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this identifier.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($display, "{}"), self.0)
            }
        }
    };
}

index_newtype!(
    /// Identifies one hardware thread (equivalently, one core: the paper's
    /// baseline runs one thread per core on a 24-core CMP).
    ThreadId,
    "T"
);

index_newtype!(
    /// Identifies one memory controller. A controller owns a contiguous
    /// span of channels (see `Topology` in the config module); the
    /// paper's baseline is four single-channel controllers, while §5.3's
    /// meta-controller coordinates several controllers per system.
    ControllerId,
    "mc"
);

index_newtype!(
    /// Identifies one memory channel; channels are numbered densely
    /// across the whole system (4 in the paper's baseline).
    ChannelId,
    "ch"
);

index_newtype!(
    /// Identifies one DRAM bank *within* a channel (4 banks per channel in
    /// the paper's baseline DDR2 configuration).
    BankId,
    "b"
);

index_newtype!(
    /// Identifies one DRAM row within a bank (2 KB rows; 16384 rows per
    /// bank in the baseline, per the paper's Table 2 storage math).
    Row,
    "row"
);

/// A `(channel, bank)` pair naming one bank in the whole memory subsystem.
///
/// Bank-level parallelism in the paper is counted across the *entire*
/// memory subsystem (all channels), so a flat, globally unique bank name
/// is frequently needed.
///
/// # Example
///
/// ```
/// use tcm_types::{BankId, ChannelId, GlobalBank};
///
/// let g = GlobalBank::new(ChannelId::new(1), BankId::new(2));
/// assert_eq!(g.flat_index(4), 6); // channel 1 * 4 banks + bank 2
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct GlobalBank {
    /// Channel holding the bank.
    pub channel: ChannelId,
    /// Bank index within the channel.
    pub bank: BankId,
}

impl GlobalBank {
    /// Creates a global bank name from its channel and per-channel bank.
    #[inline]
    pub const fn new(channel: ChannelId, bank: BankId) -> Self {
        Self { channel, bank }
    }

    /// Flattens to a dense index given the number of banks per channel.
    #[inline]
    pub const fn flat_index(self, banks_per_channel: usize) -> usize {
        self.channel.index() * banks_per_channel + self.bank.index()
    }

    /// Inverse of [`GlobalBank::flat_index`].
    #[inline]
    pub const fn from_flat(flat: usize, banks_per_channel: usize) -> Self {
        Self {
            channel: ChannelId::new(flat / banks_per_channel),
            bank: BankId::new(flat % banks_per_channel),
        }
    }
}

impl fmt::Display for GlobalBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.channel, self.bank)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_round_trips_through_usize() {
        let t = ThreadId::new(7);
        assert_eq!(usize::from(t), 7);
        assert_eq!(ThreadId::from(7), t);
        assert_eq!(t.index(), 7);
    }

    #[test]
    fn display_is_compact_and_nonempty() {
        assert_eq!(ThreadId::new(3).to_string(), "T3");
        assert_eq!(ControllerId::new(1).to_string(), "mc1");
        assert_eq!(ChannelId::new(0).to_string(), "ch0");
        assert_eq!(BankId::new(2).to_string(), "b2");
        assert_eq!(Row::new(11).to_string(), "row11");
        assert_eq!(
            GlobalBank::new(ChannelId::new(1), BankId::new(3)).to_string(),
            "ch1.b3"
        );
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ThreadId::new(1) < ThreadId::new(2));
        assert!(Row::new(9) > Row::new(3));
    }

    #[test]
    fn global_bank_flattening_round_trips() {
        for channel in 0..4 {
            for bank in 0..4 {
                let g = GlobalBank::new(ChannelId::new(channel), BankId::new(bank));
                let flat = g.flat_index(4);
                assert_eq!(GlobalBank::from_flat(flat, 4), g);
            }
        }
    }

    #[test]
    fn global_bank_flat_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for channel in 0..3 {
            for bank in 0..5 {
                let g = GlobalBank::new(ChannelId::new(channel), BankId::new(bank));
                assert!(seen.insert(g.flat_index(5)));
            }
        }
        assert_eq!(seen.len(), 15);
        assert_eq!(*seen.iter().max().unwrap(), 14);
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(ThreadId::default().index(), 0);
        assert_eq!(BankId::default().index(), 0);
    }
}
