//! Static machine description: DRAM timing and system topology.
//!
//! [`SystemConfig::paper_baseline`] reproduces Table 3 of the paper:
//! 24 cores, 4 independent DRAM controllers, DDR2-800-like bank timing
//! with 4 banks and 2 KB rows per bank, 128-entry instruction windows and
//! 3-wide issue with at most one memory operation per cycle.

use crate::error::ConfigError;

/// DRAM access timing expressed in *core* cycles (5 GHz core clock).
///
/// The model is bank-service-time granular: a request occupies its bank
/// for an access-phase whose length depends on the row-buffer state, then
/// occupies the channel's shared data bus for `bus_burst` cycles, and the
/// data reaches the core `fixed_overhead` cycles later. The defaults are
/// calibrated so that *uncontended* round-trip latencies match the paper:
///
/// | row-buffer state | paper | this model |
/// |------------------|-------|------------|
/// | hit              | 200   | `cl + bus_burst + fixed_overhead` = 200 |
/// | closed           | 300   | `rcd + cl + bus_burst + fixed_overhead` = 300 |
/// | conflict         | 400   | `rp + rcd + cl + bus_burst + fixed_overhead` = 400 |
///
/// # Example
///
/// ```
/// use tcm_types::{DramTiming, RowState};
///
/// let t = DramTiming::ddr2_800();
/// assert_eq!(t.round_trip(RowState::Hit), 200);
/// assert_eq!(t.round_trip(RowState::Closed), 300);
/// assert_eq!(t.round_trip(RowState::Conflict), 400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTiming {
    /// Precharge latency (tRP), core cycles.
    pub rp: u64,
    /// Activate (row open) latency (tRCD), core cycles.
    pub rcd: u64,
    /// Column access latency (tCL), core cycles.
    pub cl: u64,
    /// Data-bus occupancy per 32-byte transfer (BL/2), core cycles.
    pub bus_burst: u64,
    /// Controller + on-chip interconnect overhead added to every access,
    /// core cycles.
    pub fixed_overhead: u64,
}

impl DramTiming {
    /// DDR2-800-like timing calibrated to the paper's 200/300/400-cycle
    /// uncontended round trips (Table 3).
    pub const fn ddr2_800() -> Self {
        Self {
            rp: 100,
            rcd: 100,
            cl: 75,
            bus_burst: 50,
            fixed_overhead: 75,
        }
    }

    /// Cycles the bank's access phase takes for a given row-buffer state
    /// (excludes the data-bus transfer).
    pub const fn access_phase(&self, state: crate::RowState) -> u64 {
        match state {
            crate::RowState::Hit => self.cl,
            crate::RowState::Closed => self.rcd + self.cl,
            crate::RowState::Conflict => self.rp + self.rcd + self.cl,
        }
    }

    /// Uncontended round-trip latency for a given row-buffer state: the
    /// cycles from scheduling the request at an idle bank until the data
    /// reaches the core.
    pub const fn round_trip(&self, state: crate::RowState) -> u64 {
        self.access_phase(state) + self.bus_burst + self.fixed_overhead
    }

    /// Validates that the timing is usable.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any latency component that must be
    /// non-zero (`cl`, `bus_burst`) is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cl == 0 {
            return Err(ConfigError::invalid("cl", "tCL must be non-zero"));
        }
        if self.bus_burst == 0 {
            return Err(ConfigError::invalid("bus_burst", "burst must be non-zero"));
        }
        Ok(())
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr2_800()
    }
}

/// Complete static description of the simulated CMP + memory system.
///
/// Construct via [`SystemConfig::paper_baseline`] (Table 3 of the paper)
/// or [`SystemConfig::builder`] for variations, e.g. the Table 8
/// sensitivity sweeps over core count and controller count.
///
/// # Example
///
/// ```
/// use tcm_types::SystemConfig;
///
/// let cfg = SystemConfig::builder()
///     .num_threads(8)
///     .num_channels(2)
///     .build()?;
/// assert_eq!(cfg.total_banks(), 8);
/// # Ok::<(), tcm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Number of hardware threads (= cores; one thread per core).
    pub num_threads: usize,
    /// Number of memory channels, each with an independent controller.
    pub num_channels: usize,
    /// DRAM banks per channel.
    pub banks_per_channel: usize,
    /// Rows per bank (16384 in the baseline: 2 KB rows, per Table 2's
    /// `log2 Nrows = 14`).
    pub rows_per_bank: usize,
    /// Instruction window (ROB) entries per core.
    pub window_size: usize,
    /// Maximum instructions committed per core per cycle.
    pub issue_width: usize,
    /// Maximum outstanding misses per core (MSHRs).
    pub mshrs_per_core: usize,
    /// Per-controller request buffer capacity.
    pub request_buffer: usize,
    /// DRAM timing parameters.
    pub timing: DramTiming,
}

impl SystemConfig {
    /// The paper's baseline configuration (Table 3): 24 cores, 4 memory
    /// controllers, 4 banks per controller, 128-entry windows, 3-wide
    /// issue, 128-entry request buffers, DDR2-800 timing.
    pub fn paper_baseline() -> Self {
        Self {
            num_threads: 24,
            num_channels: 4,
            banks_per_channel: 4,
            rows_per_bank: 16384,
            window_size: 128,
            issue_width: 3,
            mshrs_per_core: 32,
            request_buffer: 128,
            timing: DramTiming::ddr2_800(),
        }
    }

    /// Starts building a configuration from the paper baseline.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::new()
    }

    /// Total number of banks across all channels.
    #[inline]
    pub fn total_banks(&self) -> usize {
        self.num_channels * self.banks_per_channel
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any dimension is zero or the timing
    /// parameters are invalid.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let nonzero: [(&str, usize); 8] = [
            ("num_threads", self.num_threads),
            ("num_channels", self.num_channels),
            ("banks_per_channel", self.banks_per_channel),
            ("rows_per_bank", self.rows_per_bank),
            ("window_size", self.window_size),
            ("issue_width", self.issue_width),
            ("mshrs_per_core", self.mshrs_per_core),
            ("request_buffer", self.request_buffer),
        ];
        for (name, value) in nonzero {
            if value == 0 {
                return Err(ConfigError::invalid(name, "must be non-zero"));
            }
        }
        self.timing.validate()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Builder for [`SystemConfig`], seeded with the paper baseline.
///
/// Non-consuming builder per C-BUILDER; call [`SystemConfigBuilder::build`]
/// to validate and obtain the config.
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Creates a builder initialized to [`SystemConfig::paper_baseline`].
    pub fn new() -> Self {
        Self {
            cfg: SystemConfig::paper_baseline(),
        }
    }

    /// Sets the number of threads/cores.
    pub fn num_threads(&mut self, n: usize) -> &mut Self {
        self.cfg.num_threads = n;
        self
    }

    /// Sets the number of memory channels (controllers).
    pub fn num_channels(&mut self, n: usize) -> &mut Self {
        self.cfg.num_channels = n;
        self
    }

    /// Sets the number of banks per channel.
    pub fn banks_per_channel(&mut self, n: usize) -> &mut Self {
        self.cfg.banks_per_channel = n;
        self
    }

    /// Sets the number of rows per bank.
    pub fn rows_per_bank(&mut self, n: usize) -> &mut Self {
        self.cfg.rows_per_bank = n;
        self
    }

    /// Sets the per-core instruction window size.
    pub fn window_size(&mut self, n: usize) -> &mut Self {
        self.cfg.window_size = n;
        self
    }

    /// Sets the per-core issue width.
    pub fn issue_width(&mut self, n: usize) -> &mut Self {
        self.cfg.issue_width = n;
        self
    }

    /// Sets the number of MSHRs per core.
    pub fn mshrs_per_core(&mut self, n: usize) -> &mut Self {
        self.cfg.mshrs_per_core = n;
        self
    }

    /// Sets the per-controller request buffer capacity.
    pub fn request_buffer(&mut self, n: usize) -> &mut Self {
        self.cfg.request_buffer = n;
        self
    }

    /// Sets the DRAM timing parameters.
    pub fn timing(&mut self, timing: DramTiming) -> &mut Self {
        self.cfg.timing = timing;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::RowState;

    #[test]
    fn baseline_matches_table_3() {
        let cfg = SystemConfig::paper_baseline();
        assert_eq!(cfg.num_threads, 24);
        assert_eq!(cfg.num_channels, 4);
        assert_eq!(cfg.banks_per_channel, 4);
        assert_eq!(cfg.window_size, 128);
        assert_eq!(cfg.issue_width, 3);
        assert_eq!(cfg.total_banks(), 16);
        cfg.validate().expect("baseline must validate");
    }

    #[test]
    fn round_trips_match_paper() {
        let t = DramTiming::ddr2_800();
        assert_eq!(t.round_trip(RowState::Hit), 200);
        assert_eq!(t.round_trip(RowState::Closed), 300);
        assert_eq!(t.round_trip(RowState::Conflict), 400);
    }

    #[test]
    fn access_phase_ordering() {
        let t = DramTiming::ddr2_800();
        assert!(t.access_phase(RowState::Hit) < t.access_phase(RowState::Closed));
        assert!(t.access_phase(RowState::Closed) < t.access_phase(RowState::Conflict));
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = SystemConfig::builder()
            .num_threads(8)
            .num_channels(2)
            .banks_per_channel(8)
            .build()
            .unwrap();
        assert_eq!(cfg.num_threads, 8);
        assert_eq!(cfg.total_banks(), 16);
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        assert!(SystemConfig::builder().num_threads(0).build().is_err());
        assert!(SystemConfig::builder().num_channels(0).build().is_err());
        assert!(SystemConfig::builder().issue_width(0).build().is_err());
        let bad_timing = DramTiming {
            cl: 0,
            ..DramTiming::ddr2_800()
        };
        assert!(SystemConfig::builder().timing(bad_timing).build().is_err());
    }

    #[test]
    fn error_message_names_the_field() {
        let err = SystemConfig::builder().window_size(0).build().unwrap_err();
        assert!(err.to_string().contains("window_size"));
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper_baseline());
        assert_eq!(DramTiming::default(), DramTiming::ddr2_800());
    }
}
