//! Static machine description: DRAM timing and system topology.
//!
//! [`SystemConfig::paper_baseline`] reproduces Table 3 of the paper:
//! 24 cores, 4 independent DRAM controllers, DDR2-800-like bank timing
//! with 4 banks and 2 KB rows per bank, 128-entry instruction windows and
//! 3-wide issue with at most one memory operation per cycle.

use crate::error::ConfigError;
use crate::ids::{ChannelId, ControllerId};
use std::fmt;
use std::ops::Range;

/// Upper bound on `banks_per_channel`, mirroring the `u128` occupancy
/// bitmask (`BankSet`) the DRAM crate uses to track busy banks per
/// channel. `tcm-types` cannot depend on `tcm-dram`, so the constant is
/// duplicated here; a cross-check test in `tcm-dram` keeps the two in
/// sync.
pub const MAX_BANKS_PER_CHANNEL: usize = 128;

/// Hierarchical memory-system shape: `Topology -> Controller -> Channel
/// -> Bank`.
///
/// A topology is an ordered list of memory controllers, each owning a
/// contiguous, non-empty span of channels; channels are numbered densely
/// across the whole system in controller order. Bank count per channel
/// stays uniform (it lives in [`SystemConfig::banks_per_channel`]).
///
/// [`Topology::flat(n)`](Topology::flat) — one controller owning `n`
/// channels — reproduces the legacy flat `num_channels` configuration
/// bit-identically: a single controller means a single scheduler
/// arbitrating every channel, exactly as before. Multi-controller
/// topologies give each controller its own scheduler instance and
/// request queues, coordinated by the §5.3 meta-controller.
///
/// # Example
///
/// ```
/// use tcm_types::{ControllerId, Topology};
///
/// let t = Topology::parse("3+1")?;
/// assert_eq!(t.num_controllers(), 2);
/// assert_eq!(t.num_channels(), 4);
/// assert_eq!(t.channel_range(ControllerId::new(0)), 0..3);
/// assert_eq!(t.channel_range(ControllerId::new(1)), 3..4);
/// assert_eq!(t.to_string(), "3+1");
/// assert_eq!(Topology::parse("2x2")?, Topology::uniform(2, 2));
/// assert_eq!(Topology::parse("4")?, Topology::flat(4));
/// # Ok::<(), tcm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Channels owned by each controller, in controller order.
    channels: Vec<usize>,
}

impl Topology {
    /// One controller owning `n` channels: the legacy flat shape.
    pub fn flat(n: usize) -> Self {
        Self { channels: vec![n] }
    }

    /// `controllers` controllers of `channels_each` channels each.
    pub fn uniform(controllers: usize, channels_each: usize) -> Self {
        Self {
            channels: vec![channels_each; controllers],
        }
    }

    /// A controller per entry, each owning the given channel count.
    pub fn asymmetric(channels: impl Into<Vec<usize>>) -> Self {
        Self {
            channels: channels.into(),
        }
    }

    /// Parses a topology spec: `"4"` (flat, one controller with 4
    /// channels), `"2x2"` (2 controllers x 2 channels each), or `"3+1"`
    /// (asymmetric per-controller channel counts).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the spec is malformed or describes
    /// an invalid topology (zero controllers or an empty controller).
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let num = |s: &str| -> Result<usize, ConfigError> {
            s.trim().parse().map_err(|_| {
                ConfigError::invalid("topology", "expected N, CxK or a+b+... channel counts")
            })
        };
        let topology = if let Some((controllers, each)) = spec.split_once('x') {
            Self::uniform(num(controllers)?, num(each)?)
        } else if spec.contains('+') {
            Self::asymmetric(spec.split('+').map(num).collect::<Result<Vec<_>, _>>()?)
        } else {
            Self::flat(num(spec)?)
        };
        topology.validate()?;
        Ok(topology)
    }

    /// Validates the shape: at least one controller, no empty controllers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the offending dimension.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.channels.is_empty() {
            return Err(ConfigError::invalid(
                "topology",
                "must have at least one controller",
            ));
        }
        if self.channels.contains(&0) {
            return Err(ConfigError::invalid(
                "num_channels",
                "every controller must own at least one channel",
            ));
        }
        Ok(())
    }

    /// Number of memory controllers.
    #[inline]
    pub fn num_controllers(&self) -> usize {
        self.channels.len()
    }

    /// Total channels across all controllers.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.iter().sum()
    }

    /// Channels owned by controller `c`.
    #[inline]
    pub fn channels_of(&self, c: ControllerId) -> usize {
        self.channels[c.index()]
    }

    /// Per-controller channel counts, in controller order.
    #[inline]
    pub fn per_controller(&self) -> &[usize] {
        &self.channels
    }

    /// The dense global channel indices owned by controller `c`.
    pub fn channel_range(&self, c: ControllerId) -> Range<usize> {
        let start: usize = self.channels[..c.index()].iter().sum();
        start..start + self.channels[c.index()]
    }

    /// The controller owning global channel `ch`.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range for this topology.
    pub fn controller_of(&self, ch: ChannelId) -> ControllerId {
        match self.partition(ch.index()) {
            Ok((c, _)) => c,
            Err(_) => panic!(
                "channel {ch} out of range for a {}-channel topology",
                self.num_channels()
            ),
        }
    }

    /// Splits a dense global channel index into its owning controller
    /// and the channel's *local* index within that controller — the
    /// non-panicking two-way form of [`Topology::controller_of`].
    /// Fault plans and engines that address channels under
    /// multi-controller topologies must route through this instead of
    /// assuming flat indexing, so an out-of-range index is a typed
    /// error rather than silent aliasing.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `global_channel` is out of range
    /// for this topology.
    pub fn partition(&self, global_channel: usize) -> Result<(ControllerId, usize), ConfigError> {
        let mut remaining = global_channel;
        for (c, &owned) in self.channels.iter().enumerate() {
            if remaining < owned {
                return Ok((ControllerId::new(c), remaining));
            }
            remaining -= owned;
        }
        Err(ConfigError::invalid(
            "channel",
            format!(
                "channel index {global_channel} out of range for a {}-channel topology",
                self.num_channels()
            ),
        ))
    }

    /// Iterates the controller identifiers in order.
    pub fn controllers(&self) -> impl Iterator<Item = ControllerId> {
        (0..self.channels.len()).map(ControllerId::new)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.channels.len() == 1 {
            return write!(f, "{}", self.channels[0]);
        }
        if self.channels.windows(2).all(|w| w[0] == w[1]) {
            return write!(f, "{}x{}", self.channels.len(), self.channels[0]);
        }
        for (i, n) in self.channels.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

/// DRAM access timing expressed in *core* cycles (5 GHz core clock).
///
/// The model is bank-service-time granular: a request occupies its bank
/// for an access-phase whose length depends on the row-buffer state, then
/// occupies the channel's shared data bus for `bus_burst` cycles, and the
/// data reaches the core `fixed_overhead` cycles later. The defaults are
/// calibrated so that *uncontended* round-trip latencies match the paper:
///
/// | row-buffer state | paper | this model |
/// |------------------|-------|------------|
/// | hit              | 200   | `cl + bus_burst + fixed_overhead` = 200 |
/// | closed           | 300   | `rcd + cl + bus_burst + fixed_overhead` = 300 |
/// | conflict         | 400   | `rp + rcd + cl + bus_burst + fixed_overhead` = 400 |
///
/// # Example
///
/// ```
/// use tcm_types::{DramTiming, RowState};
///
/// let t = DramTiming::ddr2_800();
/// assert_eq!(t.round_trip(RowState::Hit), 200);
/// assert_eq!(t.round_trip(RowState::Closed), 300);
/// assert_eq!(t.round_trip(RowState::Conflict), 400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTiming {
    /// Precharge latency (tRP), core cycles.
    pub rp: u64,
    /// Activate (row open) latency (tRCD), core cycles.
    pub rcd: u64,
    /// Column access latency (tCL), core cycles.
    pub cl: u64,
    /// Data-bus occupancy per 32-byte transfer (BL/2), core cycles.
    pub bus_burst: u64,
    /// Controller + on-chip interconnect overhead added to every access,
    /// core cycles.
    pub fixed_overhead: u64,
}

impl DramTiming {
    /// DDR2-800-like timing calibrated to the paper's 200/300/400-cycle
    /// uncontended round trips (Table 3).
    pub const fn ddr2_800() -> Self {
        Self {
            rp: 100,
            rcd: 100,
            cl: 75,
            bus_burst: 50,
            fixed_overhead: 75,
        }
    }

    /// Cycles the bank's access phase takes for a given row-buffer state
    /// (excludes the data-bus transfer).
    pub const fn access_phase(&self, state: crate::RowState) -> u64 {
        match state {
            crate::RowState::Hit => self.cl,
            crate::RowState::Closed => self.rcd + self.cl,
            crate::RowState::Conflict => self.rp + self.rcd + self.cl,
        }
    }

    /// Uncontended round-trip latency for a given row-buffer state: the
    /// cycles from scheduling the request at an idle bank until the data
    /// reaches the core.
    pub const fn round_trip(&self, state: crate::RowState) -> u64 {
        self.access_phase(state) + self.bus_burst + self.fixed_overhead
    }

    /// Validates that the timing is usable.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any latency component that must be
    /// non-zero (`cl`, `bus_burst`) is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cl == 0 {
            return Err(ConfigError::invalid("cl", "tCL must be non-zero"));
        }
        if self.bus_burst == 0 {
            return Err(ConfigError::invalid("bus_burst", "burst must be non-zero"));
        }
        Ok(())
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr2_800()
    }
}

/// Complete static description of the simulated CMP + memory system.
///
/// Construct via [`SystemConfig::paper_baseline`] (Table 3 of the paper)
/// or [`SystemConfig::builder`] for variations, e.g. the Table 8
/// sensitivity sweeps over core count and controller count.
///
/// # Example
///
/// ```
/// use tcm_types::{SystemConfig, Topology};
///
/// let cfg = SystemConfig::builder()
///     .num_threads(8)
///     .num_channels(2)
///     .build()?;
/// assert_eq!(cfg.total_banks(), 8);
/// // Multi-controller shapes go through the hierarchical topology API:
/// let numa = SystemConfig::builder()
///     .topology(Topology::uniform(2, 2))
///     .build()?;
/// assert_eq!(numa.num_channels(), 4);
/// assert_eq!(numa.topology.num_controllers(), 2);
/// # Ok::<(), tcm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Number of hardware threads (= cores; one thread per core).
    pub num_threads: usize,
    /// The controller/channel hierarchy. [`Topology::flat(n)`]
    /// (Topology::flat) reproduces the legacy flat `num_channels: n`
    /// configuration bit-identically.
    pub topology: Topology,
    /// DRAM banks per channel.
    pub banks_per_channel: usize,
    /// Rows per bank (16384 in the baseline: 2 KB rows, per Table 2's
    /// `log2 Nrows = 14`).
    pub rows_per_bank: usize,
    /// Instruction window (ROB) entries per core.
    pub window_size: usize,
    /// Maximum instructions committed per core per cycle.
    pub issue_width: usize,
    /// Maximum outstanding misses per core (MSHRs).
    pub mshrs_per_core: usize,
    /// Per-controller request buffer capacity.
    pub request_buffer: usize,
    /// DRAM timing parameters.
    pub timing: DramTiming,
}

impl SystemConfig {
    /// The paper's baseline configuration (Table 3): 24 cores, 4 memory
    /// controllers, 4 banks per controller, 128-entry windows, 3-wide
    /// issue, 128-entry request buffers, DDR2-800 timing.
    pub fn paper_baseline() -> Self {
        Self {
            num_threads: 24,
            topology: Topology::flat(4),
            banks_per_channel: 4,
            rows_per_bank: 16384,
            window_size: 128,
            issue_width: 3,
            mshrs_per_core: 32,
            request_buffer: 128,
            timing: DramTiming::ddr2_800(),
        }
    }

    /// Starts building a configuration from the paper baseline.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::new()
    }

    /// Total number of memory channels across all controllers.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.topology.num_channels()
    }

    /// Total number of banks across all channels.
    #[inline]
    pub fn total_banks(&self) -> usize {
        self.num_channels() * self.banks_per_channel
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any dimension is zero, the topology
    /// is malformed, `banks_per_channel` overflows the DRAM crate's
    /// `u128` bank-occupancy bitmask, or the timing parameters are
    /// invalid.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let nonzero: [(&str, usize); 7] = [
            ("num_threads", self.num_threads),
            ("banks_per_channel", self.banks_per_channel),
            ("rows_per_bank", self.rows_per_bank),
            ("window_size", self.window_size),
            ("issue_width", self.issue_width),
            ("mshrs_per_core", self.mshrs_per_core),
            ("request_buffer", self.request_buffer),
        ];
        for (name, value) in nonzero {
            if value == 0 {
                return Err(ConfigError::invalid(name, "must be non-zero"));
            }
        }
        self.topology.validate()?;
        if self.banks_per_channel > MAX_BANKS_PER_CHANNEL {
            return Err(ConfigError::invalid(
                "banks_per_channel",
                "exceeds the 128-bank occupancy bitmask a channel can track",
            ));
        }
        self.timing.validate()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Builder for [`SystemConfig`], seeded with the paper baseline.
///
/// Non-consuming builder per C-BUILDER; call [`SystemConfigBuilder::build`]
/// to validate and obtain the config.
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Creates a builder initialized to [`SystemConfig::paper_baseline`].
    pub fn new() -> Self {
        Self {
            cfg: SystemConfig::paper_baseline(),
        }
    }

    /// Sets the number of threads/cores.
    pub fn num_threads(&mut self, n: usize) -> &mut Self {
        self.cfg.num_threads = n;
        self
    }

    /// Sets a flat topology: one controller owning `n` channels — the
    /// legacy configuration surface, preserved bit-identically.
    pub fn num_channels(&mut self, n: usize) -> &mut Self {
        self.cfg.topology = Topology::flat(n);
        self
    }

    /// Sets the controller/channel hierarchy.
    pub fn topology(&mut self, topology: Topology) -> &mut Self {
        self.cfg.topology = topology;
        self
    }

    /// Sets the number of banks per channel.
    pub fn banks_per_channel(&mut self, n: usize) -> &mut Self {
        self.cfg.banks_per_channel = n;
        self
    }

    /// Sets the number of rows per bank.
    pub fn rows_per_bank(&mut self, n: usize) -> &mut Self {
        self.cfg.rows_per_bank = n;
        self
    }

    /// Sets the per-core instruction window size.
    pub fn window_size(&mut self, n: usize) -> &mut Self {
        self.cfg.window_size = n;
        self
    }

    /// Sets the per-core issue width.
    pub fn issue_width(&mut self, n: usize) -> &mut Self {
        self.cfg.issue_width = n;
        self
    }

    /// Sets the number of MSHRs per core.
    pub fn mshrs_per_core(&mut self, n: usize) -> &mut Self {
        self.cfg.mshrs_per_core = n;
        self
    }

    /// Sets the per-controller request buffer capacity.
    pub fn request_buffer(&mut self, n: usize) -> &mut Self {
        self.cfg.request_buffer = n;
        self
    }

    /// Sets the DRAM timing parameters.
    pub fn timing(&mut self, timing: DramTiming) -> &mut Self {
        self.cfg.timing = timing;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::RowState;

    #[test]
    fn baseline_matches_table_3() {
        let cfg = SystemConfig::paper_baseline();
        assert_eq!(cfg.num_threads, 24);
        assert_eq!(cfg.num_channels(), 4);
        assert_eq!(cfg.topology, Topology::flat(4));
        assert_eq!(cfg.banks_per_channel, 4);
        assert_eq!(cfg.window_size, 128);
        assert_eq!(cfg.issue_width, 3);
        assert_eq!(cfg.total_banks(), 16);
        cfg.validate().expect("baseline must validate");
    }

    #[test]
    fn round_trips_match_paper() {
        let t = DramTiming::ddr2_800();
        assert_eq!(t.round_trip(RowState::Hit), 200);
        assert_eq!(t.round_trip(RowState::Closed), 300);
        assert_eq!(t.round_trip(RowState::Conflict), 400);
    }

    #[test]
    fn access_phase_ordering() {
        let t = DramTiming::ddr2_800();
        assert!(t.access_phase(RowState::Hit) < t.access_phase(RowState::Closed));
        assert!(t.access_phase(RowState::Closed) < t.access_phase(RowState::Conflict));
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = SystemConfig::builder()
            .num_threads(8)
            .num_channels(2)
            .banks_per_channel(8)
            .build()
            .unwrap();
        assert_eq!(cfg.num_threads, 8);
        assert_eq!(cfg.total_banks(), 16);
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        assert!(SystemConfig::builder().num_threads(0).build().is_err());
        assert!(SystemConfig::builder().num_channels(0).build().is_err());
        assert!(SystemConfig::builder().issue_width(0).build().is_err());
        let bad_timing = DramTiming {
            cl: 0,
            ..DramTiming::ddr2_800()
        };
        assert!(SystemConfig::builder().timing(bad_timing).build().is_err());
    }

    #[test]
    fn error_message_names_the_field() {
        let err = SystemConfig::builder().window_size(0).build().unwrap_err();
        assert!(err.to_string().contains("window_size"));
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper_baseline());
        assert_eq!(DramTiming::default(), DramTiming::ddr2_800());
    }

    #[test]
    fn topology_parse_covers_all_three_spellings() {
        assert_eq!(Topology::parse("4").unwrap(), Topology::flat(4));
        assert_eq!(Topology::parse("2x2").unwrap(), Topology::uniform(2, 2));
        assert_eq!(
            Topology::parse("3+1").unwrap(),
            Topology::asymmetric([3, 1])
        );
        assert!(Topology::parse("").is_err());
        assert!(Topology::parse("0").is_err());
        assert!(Topology::parse("2x0").is_err());
        assert!(Topology::parse("3+0").is_err());
        assert!(Topology::parse("banana").is_err());
    }

    #[test]
    fn topology_display_round_trips_through_parse() {
        for spec in ["4", "1", "2x2", "4x1", "3+1", "1+2+3"] {
            let t = Topology::parse(spec).unwrap();
            assert_eq!(Topology::parse(&t.to_string()).unwrap(), t, "{spec}");
        }
        // Uniform shapes render in CxK form even when built asymmetric.
        assert_eq!(Topology::asymmetric([2, 2]).to_string(), "2x2");
        assert_eq!(Topology::flat(4).to_string(), "4");
    }

    #[test]
    fn topology_channel_ranges_partition_the_channels() {
        let t = Topology::asymmetric([3, 1, 2]);
        assert_eq!(t.num_controllers(), 3);
        assert_eq!(t.num_channels(), 6);
        assert_eq!(t.channel_range(ControllerId::new(0)), 0..3);
        assert_eq!(t.channel_range(ControllerId::new(1)), 3..4);
        assert_eq!(t.channel_range(ControllerId::new(2)), 4..6);
        for ch in 0..6 {
            let owner = t.controller_of(ChannelId::new(ch));
            assert!(t.channel_range(owner).contains(&ch), "channel {ch}");
        }
    }

    #[test]
    fn partition_splits_global_indices_and_rejects_out_of_range() {
        let t = Topology::asymmetric([3, 1, 2]);
        assert_eq!(t.partition(0).unwrap(), (ControllerId::new(0), 0));
        assert_eq!(t.partition(2).unwrap(), (ControllerId::new(0), 2));
        assert_eq!(t.partition(3).unwrap(), (ControllerId::new(1), 0));
        assert_eq!(t.partition(4).unwrap(), (ControllerId::new(2), 0));
        assert_eq!(t.partition(5).unwrap(), (ControllerId::new(2), 1));
        let err = t.partition(6).unwrap_err();
        assert_eq!(err.field(), "channel");
        assert!(err.reason().contains("out of range"));
        // Consistency with the panicking single-way form.
        for ch in 0..6 {
            let (owner, local) = t.partition(ch).unwrap();
            assert_eq!(owner, t.controller_of(ChannelId::new(ch)));
            assert_eq!(t.channel_range(owner).start + local, ch);
        }
    }

    #[test]
    fn bank_counts_past_the_bitmask_are_rejected() {
        let ok = SystemConfig::builder()
            .banks_per_channel(MAX_BANKS_PER_CHANNEL)
            .build();
        assert!(ok.is_ok());
        let err = SystemConfig::builder()
            .banks_per_channel(MAX_BANKS_PER_CHANNEL + 1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("banks_per_channel"));
    }

    #[test]
    fn multi_controller_configs_validate() {
        let cfg = SystemConfig::builder()
            .num_threads(8)
            .topology(Topology::asymmetric([3, 1]))
            .build()
            .unwrap();
        assert_eq!(cfg.num_channels(), 4);
        assert_eq!(cfg.total_banks(), 16);
        assert!(SystemConfig::builder()
            .topology(Topology::asymmetric([]))
            .build()
            .is_err());
        assert!(SystemConfig::builder()
            .topology(Topology::asymmetric([2, 0]))
            .build()
            .is_err());
    }
}
