//! Cooperative cancellation for long-running simulations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle checked cooperatively by the
/// simulator's event loop.
///
/// Two trigger sources, OR-ed together:
///
/// * an explicit [`CancelToken::cancel`] call (from any thread — the
///   flag is atomic and all clones share it);
/// * an optional wall-clock deadline fixed at construction
///   ([`CancelToken::with_deadline`]), the mechanism behind per-cell
///   sweep deadlines (`--cell-deadline`).
///
/// The token never interrupts anything by itself: the simulation polls
/// [`CancelToken::is_cancelled`] at a coarse granularity and surfaces
/// `SimError::Cancelled` when it observes the trigger, so results
/// remain deterministic up to the cancellation cycle.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// An optional parent token whose cancellation propagates to this
    /// one (but never the other way around). The mechanism behind
    /// sweep-level cancellation: each cell gets a child token carrying
    /// its own per-cell deadline, while a single parent cancel aborts
    /// every in-flight cell at once.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

impl CancelToken {
    /// A token with no deadline; fires only on [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that also fires once `deadline` of wall-clock time has
    /// elapsed from this call.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(deadline),
                parent: None,
            }),
        }
    }

    /// A child token that fires when *either* this token fires or its
    /// own `deadline` (measured from this call) elapses. Cancelling the
    /// child never cancels the parent.
    pub fn child_with_deadline(&self, deadline: Option<Duration>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: deadline.and_then(|d| Instant::now().checked_add(d)),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline has passed
    /// (on this token or any ancestor).
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_deadline_cancels_immediately() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn generous_deadline_does_not_cancel() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel still works");
    }

    #[test]
    fn parent_cancellation_propagates_to_children_only() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(None);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancel reaches the child");

        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Some(Duration::from_secs(3600)));
        child.cancel();
        assert!(!parent.is_cancelled(), "child cancel never climbs up");
    }

    #[test]
    fn child_deadline_fires_independently() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Some(Duration::ZERO));
        assert!(child.is_cancelled(), "zero child deadline fires at once");
        assert!(!parent.is_cancelled());
    }
}
