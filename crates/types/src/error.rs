//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid machine or algorithm configuration.
///
/// Produced by `validate`/`build` methods on configuration types; carries
/// the offending field name and a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    reason: String,
}

impl ConfigError {
    /// Creates an error naming the invalid `field` and the `reason` it is
    /// invalid.
    pub fn invalid(field: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// The configuration field that failed validation.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Why the field is invalid.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_field_and_reason() {
        let e = ConfigError::invalid("num_threads", "must be non-zero");
        let msg = e.to_string();
        assert!(msg.contains("num_threads"));
        assert!(msg.contains("must be non-zero"));
        assert_eq!(e.field(), "num_threads");
        assert_eq!(e.reason(), "must be non-zero");
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
    }
}
