//! Error types shared across the workspace.
//!
//! Three failure classes cover every fallible library path (see
//! DESIGN.md §"Hardening"):
//!
//! * [`ConfigError`] — an invalid machine or algorithm configuration,
//!   rejected before any simulation starts;
//! * [`SimError::Stalled`] — the simulator's forward-progress watchdog
//!   tripped: the event loop was still executing but no memory request
//!   retired for too long (or the same cycle replayed events without
//!   bound). Carries a [`StallReport`] diagnostic snapshot;
//! * [`SimError::InvariantViolation`] — the runtime DRAM protocol
//!   checker (in `tcm-dram`) observed the memory system breaking one of
//!   its timing or conservation invariants. Carries a structured
//!   [`InvariantViolation`] with cycle, bank and request context.

use crate::{BankId, ChannelId, ControllerId, Cycle, RequestId};
use std::error::Error;
use std::fmt;

/// An invalid machine or algorithm configuration.
///
/// Produced by `validate`/`build` methods on configuration types; carries
/// the offending field name and a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    reason: String,
}

impl ConfigError {
    /// Creates an error naming the invalid `field` and the `reason` it is
    /// invalid.
    pub fn invalid(field: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// The configuration field that failed validation.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Why the field is invalid.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

/// The specific protocol invariant a violation report refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Per-bank access timing: a bank began a new access before its
    /// previous one released it, or the access phase did not match the
    /// tRCD/tRP/tCL spacing implied by the row-buffer state.
    BankTiming,
    /// The row-buffer state reported for an access disagrees with the
    /// row the checker's shadow row-buffer says was open.
    RowState,
    /// Two data-bus transfers on one channel overlapped in time.
    BusOverlap,
    /// Request conservation: a request was serviced that was never
    /// admitted, serviced twice, admitted twice, or requests went
    /// missing (admitted ≠ serviced + still queued).
    Conservation,
    /// A bounded resource (e.g. the controller spill queue) grew beyond
    /// the bound implied by the machine configuration.
    ResourceBound,
}

impl Invariant {
    /// Short human-readable name of the invariant.
    pub const fn name(self) -> &'static str {
        match self {
            Invariant::BankTiming => "bank-timing",
            Invariant::RowState => "row-state",
            Invariant::BusOverlap => "bus-overlap",
            Invariant::Conservation => "conservation",
            Invariant::ResourceBound => "resource-bound",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured report of one DRAM protocol invariant violation.
///
/// Produced by the runtime protocol checker in `tcm-dram`; always names
/// the cycle and channel, and — where the invariant concerns a specific
/// bank or request — the bank and request too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant was broken.
    pub invariant: Invariant,
    /// Cycle at which the violation was observed.
    pub cycle: Cycle,
    /// Channel on which it was observed.
    pub channel: ChannelId,
    /// The bank involved, when the invariant is per-bank.
    pub bank: Option<BankId>,
    /// The request involved, when one request can be blamed.
    pub request: Option<RequestId>,
    /// Human-readable specifics (expected vs observed values).
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol invariant `{}` violated at cycle {} on {}",
            self.invariant, self.cycle, self.channel
        )?;
        if let Some(bank) = self.bank {
            write!(f, " {bank}")?;
        }
        if let Some(request) = self.request {
            write!(f, " ({request})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl Error for InvariantViolation {}

/// Diagnostic snapshot attached to [`SimError::Stalled`]: everything
/// needed to see *why* the system stopped making forward progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub now: Cycle,
    /// Cycle of the last request retirement (0 if none ever retired).
    pub last_retire: Cycle,
    /// Events processed since the last retirement.
    pub events_since_retire: u64,
    /// Outstanding (injected but not completed) misses, per thread.
    pub outstanding: Vec<usize>,
    /// Request-buffer depth, per channel.
    pub queue_depths: Vec<usize>,
    /// Spill-queue depth, per channel.
    pub spill_depths: Vec<usize>,
    /// Number of busy banks, per channel.
    pub busy_banks: Vec<usize>,
    /// The controller attributed as the stall site, when the engine can
    /// name one. The flat single-controller engine reports `None`; the
    /// multi-controller engine names the shard whose timer froze or
    /// whose queues back up the most.
    pub controller: Option<ControllerId>,
}

impl StallReport {
    /// Total outstanding misses across all threads.
    pub fn total_outstanding(&self) -> usize {
        self.outstanding.iter().sum()
    }

    /// Multi-line human-readable rendering of the snapshot (never
    /// empty).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "no forward progress: cycle {}, last retirement at cycle {} \
             ({} events since), {} outstanding misses\n",
            self.now,
            self.last_retire,
            self.events_since_retire,
            self.total_outstanding(),
        );
        if let Some(controller) = self.controller {
            s.push_str(&format!("  attributed controller: {controller}\n"));
        }
        s.push_str(&format!("  per-thread outstanding: {:?}\n", self.outstanding));
        s.push_str(&format!("  per-channel queue depths: {:?}\n", self.queue_depths));
        s.push_str(&format!("  per-channel spill depths: {:?}\n", self.spill_depths));
        s.push_str(&format!("  per-channel busy banks: {:?}", self.busy_banks));
        s
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Any failure a simulation run can surface: configuration rejection,
/// loss of forward progress, or a broken protocol invariant.
///
/// Returned by fallible simulation entry points (e.g.
/// `System::try_run` in `tcm-sim`); sweep engines record it per cell
/// instead of letting one bad cell take down the whole experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The machine or algorithm configuration was invalid.
    Config(ConfigError),
    /// The forward-progress watchdog fired; the report says why.
    /// Boxed: the report carries four per-thread/per-channel vectors,
    /// and the error type rides in every hot `Result` return.
    Stalled(Box<StallReport>),
    /// The runtime DRAM protocol checker observed a violation.
    InvariantViolation(InvariantViolation),
    /// The run's cooperative cancellation token fired (a per-cell
    /// deadline expired or the run was cancelled externally); carries
    /// the cycle at which the event loop noticed. The simulation is
    /// sound up to that cycle but incomplete.
    Cancelled(Cycle),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::Stalled(r) => write!(f, "simulation stalled: {}", r.summary()),
            SimError::InvariantViolation(v) => write!(f, "{v}"),
            SimError::Cancelled(cycle) => {
                write!(f, "simulation cancelled at cycle {cycle} (deadline or external cancel)")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::InvariantViolation(v) => Some(v),
            SimError::Stalled(_) | SimError::Cancelled(_) => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<InvariantViolation> for SimError {
    fn from(v: InvariantViolation) -> Self {
        SimError::InvariantViolation(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_field_and_reason() {
        let e = ConfigError::invalid("num_threads", "must be non-zero");
        let msg = e.to_string();
        assert!(msg.contains("num_threads"));
        assert!(msg.contains("must be non-zero"));
        assert_eq!(e.field(), "num_threads");
        assert_eq!(e.reason(), "must be non-zero");
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
        assert_traits::<SimError>();
        assert_traits::<InvariantViolation>();
    }

    #[test]
    fn violation_display_names_context() {
        let v = InvariantViolation {
            invariant: Invariant::BankTiming,
            cycle: 1234,
            channel: ChannelId::new(2),
            bank: Some(BankId::new(3)),
            request: Some(RequestId::new(77)),
            detail: "bank re-issued 40 cycles early".into(),
        };
        let msg = v.to_string();
        assert!(msg.contains("bank-timing"), "{msg}");
        assert!(msg.contains("1234"), "{msg}");
        assert!(msg.contains("40 cycles early"), "{msg}");
        let sim: SimError = v.clone().into();
        assert_eq!(sim, SimError::InvariantViolation(v));
        assert!(sim.source().is_some());
    }

    #[test]
    fn stall_report_summary_is_never_empty() {
        let r = StallReport {
            now: 500,
            last_retire: 100,
            events_since_retire: 42,
            outstanding: vec![3, 0],
            queue_depths: vec![2],
            spill_depths: vec![0],
            busy_banks: vec![1],
            controller: None,
        };
        assert_eq!(r.total_outstanding(), 3);
        assert!(r.summary().contains("cycle 500"));
        assert!(r.summary().contains("42 events"));
        assert!(!r.summary().contains("attributed controller"));
        let mut attributed = r.clone();
        attributed.controller = Some(ControllerId::new(1));
        assert!(attributed.summary().contains("attributed controller: mc1"));
        let sim = SimError::Stalled(Box::new(r));
        assert!(sim.to_string().contains("stalled"));
        assert!(sim.source().is_none());
    }

    #[test]
    fn cancelled_names_the_cycle_and_has_no_source() {
        let sim = SimError::Cancelled(4321);
        assert!(sim.to_string().contains("cancelled at cycle 4321"));
        assert!(sim.source().is_none());
        assert_eq!(sim, SimError::Cancelled(4321));
        assert_ne!(sim, SimError::Cancelled(4322));
    }

    #[test]
    fn config_error_converts_into_sim_error() {
        let e = ConfigError::invalid("horizon", "too small");
        let sim: SimError = e.clone().into();
        assert_eq!(sim, SimError::Config(e));
        assert!(sim.to_string().contains("horizon"));
    }

    #[test]
    fn invariant_names_are_distinct() {
        let all = [
            Invariant::BankTiming,
            Invariant::RowState,
            Invariant::BusOverlap,
            Invariant::Conservation,
            Invariant::ResourceBound,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
