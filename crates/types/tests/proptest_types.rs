//! Property tests for the foundational types: identifier round trips,
//! address flattening, and timing monotonicity.

use proptest::prelude::*;
use tcm_types::{BankId, ChannelId, DramTiming, GlobalBank, Request, RequestId, RowState};

proptest! {
    /// Global bank flattening is a bijection for any bank geometry.
    #[test]
    fn global_bank_flattening_bijective(
        channels in 1usize..16,
        banks in 1usize..16,
    ) {
        let mut seen = std::collections::HashSet::new();
        for c in 0..channels {
            for b in 0..banks {
                let g = GlobalBank::new(ChannelId::new(c), BankId::new(b));
                let flat = g.flat_index(banks);
                prop_assert!(flat < channels * banks);
                prop_assert!(seen.insert(flat));
                prop_assert_eq!(GlobalBank::from_flat(flat, banks), g);
            }
        }
    }

    /// Round-trip latency is strictly ordered hit < closed < conflict for
    /// any timing with non-zero precharge/activate components.
    #[test]
    fn round_trip_ordering(
        rp in 1u64..500,
        rcd in 1u64..500,
        cl in 1u64..500,
        burst in 1u64..200,
        overhead in 0u64..200,
    ) {
        let t = DramTiming { rp, rcd, cl, bus_burst: burst, fixed_overhead: overhead };
        prop_assert!(t.round_trip(RowState::Hit) < t.round_trip(RowState::Closed));
        prop_assert!(t.round_trip(RowState::Closed) < t.round_trip(RowState::Conflict));
        prop_assert_eq!(
            t.round_trip(RowState::Conflict) - t.round_trip(RowState::Closed),
            rp
        );
    }

    /// Request age ordering is a strict total order (antisymmetric and
    /// total) over distinct requests.
    #[test]
    fn request_age_is_total_order(
        a_cycle in 0u64..1000,
        b_cycle in 0u64..1000,
        a_id in 0u64..1000,
        b_id in 0u64..1000,
    ) {
        prop_assume!(a_id != b_id);
        let addr = tcm_types::MemAddress::new(
            ChannelId::new(0),
            BankId::new(0),
            tcm_types::Row::new(0),
        );
        let a = Request::new(RequestId::new(a_id), tcm_types::ThreadId::new(0), addr, a_cycle);
        let b = Request::new(RequestId::new(b_id), tcm_types::ThreadId::new(0), addr, b_cycle);
        prop_assert!(a.is_older_than(&b) != b.is_older_than(&a));
    }
}
