//! Property tests for the foundational types: identifier round trips,
//! address flattening, timing monotonicity, and topology round trips.

use proptest::prelude::*;
use tcm_types::{
    BankId, ChannelId, DramTiming, GlobalBank, Request, RequestId, RowState, SystemConfig,
    Topology,
};

proptest! {
    /// Global bank flattening is a bijection for any bank geometry.
    #[test]
    fn global_bank_flattening_bijective(
        channels in 1usize..16,
        banks in 1usize..16,
    ) {
        let mut seen = std::collections::HashSet::new();
        for c in 0..channels {
            for b in 0..banks {
                let g = GlobalBank::new(ChannelId::new(c), BankId::new(b));
                let flat = g.flat_index(banks);
                prop_assert!(flat < channels * banks);
                prop_assert!(seen.insert(flat));
                prop_assert_eq!(GlobalBank::from_flat(flat, banks), g);
            }
        }
    }

    /// Round-trip latency is strictly ordered hit < closed < conflict for
    /// any timing with non-zero precharge/activate components.
    #[test]
    fn round_trip_ordering(
        rp in 1u64..500,
        rcd in 1u64..500,
        cl in 1u64..500,
        burst in 1u64..200,
        overhead in 0u64..200,
    ) {
        let t = DramTiming { rp, rcd, cl, bus_burst: burst, fixed_overhead: overhead };
        prop_assert!(t.round_trip(RowState::Hit) < t.round_trip(RowState::Closed));
        prop_assert!(t.round_trip(RowState::Closed) < t.round_trip(RowState::Conflict));
        prop_assert_eq!(
            t.round_trip(RowState::Conflict) - t.round_trip(RowState::Closed),
            rp
        );
    }

    /// Request age ordering is a strict total order (antisymmetric and
    /// total) over distinct requests.
    #[test]
    fn request_age_is_total_order(
        a_cycle in 0u64..1000,
        b_cycle in 0u64..1000,
        a_id in 0u64..1000,
        b_id in 0u64..1000,
    ) {
        prop_assume!(a_id != b_id);
        let addr = tcm_types::MemAddress::new(
            ChannelId::new(0),
            BankId::new(0),
            tcm_types::Row::new(0),
        );
        let a = Request::new(RequestId::new(a_id), tcm_types::ThreadId::new(0), addr, a_cycle);
        let b = Request::new(RequestId::new(b_id), tcm_types::ThreadId::new(0), addr, b_cycle);
        prop_assert!(a.is_older_than(&b) != b.is_older_than(&a));
    }

    /// `Topology::flat(n)` reproduces the legacy single-controller
    /// config exactly: one controller owning all `n` channels, dense
    /// channel indices, and a spelling that parses back to itself —
    /// and a config built through the legacy `num_channels(n)` knob is
    /// identical to one built with the explicit flat topology.
    #[test]
    fn flat_topology_round_trips_legacy_config(n in 1usize..64) {
        let flat = Topology::flat(n);
        prop_assert_eq!(flat.validate(), Ok(()));
        prop_assert_eq!(flat.num_controllers(), 1);
        prop_assert_eq!(flat.num_channels(), n);
        prop_assert_eq!(flat.per_controller(), &[n]);
        let c0 = flat.controllers().next().expect("one controller");
        prop_assert_eq!(flat.channels_of(c0), n);
        prop_assert_eq!(flat.channel_range(c0), 0..n);
        for ch in 0..n {
            prop_assert_eq!(flat.controller_of(ChannelId::new(ch)), c0);
        }
        prop_assert_eq!(flat.to_string(), n.to_string());
        prop_assert_eq!(Topology::parse(&n.to_string()), Ok(flat.clone()));

        let legacy = SystemConfig::builder().num_channels(n).build();
        let explicit = SystemConfig::builder().topology(flat).build();
        prop_assert_eq!(legacy, explicit);
    }

    /// Any valid topology's channel ranges partition `0..num_channels`
    /// in controller order, and `controller_of` inverts the partition;
    /// the display spelling always parses back to the same topology.
    #[test]
    fn topology_ranges_partition_and_display_round_trips(
        counts in proptest::collection::vec(1usize..8, 1..6),
    ) {
        let t = Topology::asymmetric(counts.clone());
        prop_assert_eq!(t.validate(), Ok(()));
        prop_assert_eq!(t.num_controllers(), counts.len());
        let mut next = 0usize;
        for c in t.controllers() {
            let range = t.channel_range(c);
            prop_assert_eq!(range.start, next);
            prop_assert_eq!(range.len(), t.channels_of(c));
            for ch in range.clone() {
                prop_assert_eq!(t.controller_of(ChannelId::new(ch)), c);
            }
            next = range.end;
        }
        prop_assert_eq!(next, t.num_channels());
        prop_assert_eq!(Topology::parse(&t.to_string()), Ok(t));
    }
}
