//! Multiprogrammed workload construction: the paper's Table 5 workloads
//! and the randomized mixes behind its 96-workload studies.

use crate::{spec2006, spec_by_name, BenchmarkProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A multiprogrammed workload: one benchmark profile per hardware thread.
///
/// # Example
///
/// ```
/// use tcm_workload::random_workload;
///
/// let w = random_workload(0, 24, 0.5);
/// assert_eq!(w.threads.len(), 24);
/// assert!((w.intensity() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (e.g. `"A"`, `"rand-50%-07"`).
    pub name: String,
    /// One profile per thread, indexed by thread id.
    pub threads: Vec<BenchmarkProfile>,
}

impl WorkloadSpec {
    /// Creates a workload from its parts.
    pub fn new(name: impl Into<String>, threads: Vec<BenchmarkProfile>) -> Self {
        Self {
            name: name.into(),
            threads,
        }
    }

    /// Fraction of threads that are memory-intensive (MPKI > 1), the
    /// paper's definition of workload memory intensity.
    pub fn intensity(&self) -> f64 {
        if self.threads.is_empty() {
            return 0.0;
        }
        let intensive = self.threads.iter().filter(|p| p.is_memory_intensive()).count();
        intensive as f64 / self.threads.len() as f64
    }

    /// Returns a copy with every thread's MPKI scaled by `factor`
    /// (cache-size modeling; see
    /// [`BenchmarkProfile::with_mpki_scaled`]).
    pub fn with_mpki_scaled(&self, factor: f64) -> Self {
        Self {
            name: format!("{}(x{factor})", self.name),
            threads: self
                .threads
                .iter()
                .map(|p| p.with_mpki_scaled(factor))
                .collect(),
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} threads, {:.0}% intensive)",
            self.name,
            self.threads.len(),
            self.intensity() * 100.0
        )
    }
}

fn expand(names: &[(&str, usize)]) -> Vec<BenchmarkProfile> {
    let mut threads = Vec::new();
    for &(name, count) in names {
        let profile = spec_by_name(name)
            .unwrap_or_else(|| panic!("unknown benchmark in workload table: {name}"));
        for _ in 0..count {
            threads.push(profile.clone());
        }
    }
    threads
}

/// The four representative 24-thread workloads of the paper's Table 5
/// (each 50 % memory-intensive).
///
/// Note: the paper's Table 5 column headers are transposed in print (the
/// "memory-intensive" column lists the *non-intensive* benchmarks and
/// vice versa, as the MPKI values in Table 4 show); we list each
/// benchmark under its actual MPKI class.
pub fn table5_workloads() -> Vec<WorkloadSpec> {
    let a_intensive: &[(&str, usize)] = &[
        ("mcf", 1),
        ("soplex", 2),
        ("lbm", 2),
        ("leslie", 1),
        ("sphinx3", 1),
        ("xalancbmk", 1),
        ("omnetpp", 1),
        ("astar", 1),
        ("hmmer", 2),
    ];
    let a_light: &[(&str, usize)] = &[
        ("calculix", 3),
        ("dealII", 1),
        ("gcc", 1),
        ("gromacs", 2),
        ("namd", 1),
        ("perl", 1),
        ("povray", 1),
        ("sjeng", 1),
        ("tonto", 1),
    ];
    let b_intensive: &[(&str, usize)] = &[
        ("bzip", 2),
        ("cactusADM", 3),
        ("GemsFDTD", 1),
        ("h264ref", 2),
        ("hmmer", 1),
        ("libquantum", 2),
        ("sphinx3", 1),
    ];
    let b_light: &[(&str, usize)] = &[
        ("gcc", 2),
        ("gobmk", 3),
        ("namd", 2),
        ("perl", 3),
        ("sjeng", 1),
        ("wrf", 1),
    ];
    let c_intensive: &[(&str, usize)] = &[
        ("GemsFDTD", 2),
        ("libquantum", 3),
        ("cactusADM", 1),
        ("astar", 1),
        ("omnetpp", 1),
        ("bzip", 1),
        ("soplex", 3),
    ];
    let c_light: &[(&str, usize)] = &[
        ("calculix", 2),
        ("dealII", 2),
        ("gromacs", 2),
        ("namd", 1),
        ("perl", 2),
        ("povray", 1),
        ("tonto", 1),
        ("wrf", 1),
    ];
    let d_intensive: &[(&str, usize)] = &[
        ("omnetpp", 1),
        ("bzip", 2),
        ("h264ref", 1),
        ("cactusADM", 1),
        ("astar", 1),
        ("soplex", 1),
        ("lbm", 2),
        ("leslie", 1),
        ("xalancbmk", 2),
    ];
    let d_light: &[(&str, usize)] = &[
        ("calculix", 1),
        ("dealII", 1),
        ("gcc", 1),
        ("gromacs", 1),
        ("perl", 1),
        ("povray", 2),
        ("sjeng", 2),
        ("tonto", 3),
    ];

    [
        ("A", a_intensive, a_light),
        ("B", b_intensive, b_light),
        ("C", c_intensive, c_light),
        ("D", d_intensive, d_light),
    ]
    .into_iter()
    .map(|(name, intensive, light)| {
        let mut threads = expand(intensive);
        threads.extend(expand(light));
        WorkloadSpec::new(name, threads)
    })
    .collect()
}

/// Draws a random `num_threads`-thread workload in which a
/// `intensity` fraction of the threads are memory-intensive benchmarks
/// (sampled with replacement from Table 4's intensive set, MPKI > 1) and
/// the rest are memory-non-intensive — the paper's workload construction
/// for its 96-workload studies.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `intensity` is outside `[0, 1]` or `num_threads` is zero.
pub fn random_workload(seed: u64, num_threads: usize, intensity: f64) -> WorkloadSpec {
    assert!((0.0..=1.0).contains(&intensity), "intensity must be in [0,1]");
    assert!(num_threads > 0, "workload needs at least one thread");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    let all = spec2006();
    let intensive: Vec<_> = all.iter().filter(|p| p.is_memory_intensive()).collect();
    let light: Vec<_> = all.iter().filter(|p| !p.is_memory_intensive()).collect();
    let num_intensive = (intensity * num_threads as f64).round() as usize;
    let mut threads = Vec::with_capacity(num_threads);
    for _ in 0..num_intensive {
        threads.push(intensive[rng.gen_range(0..intensive.len())].clone());
    }
    for _ in num_intensive..num_threads {
        threads.push(light[rng.gen_range(0..light.len())].clone());
    }
    WorkloadSpec::new(
        format!("rand-{:.0}%-{seed:02}", intensity * 100.0),
        threads,
    )
}

/// Builds the paper's workload suite: `per_category` random workloads at
/// each of the given intensities (the paper uses 32 workloads at each of
/// 50 %, 75 % and 100 % for its headline 96-workload results).
pub fn workload_suite(
    intensities: &[f64],
    per_category: usize,
    num_threads: usize,
) -> Vec<WorkloadSpec> {
    let mut suite = Vec::with_capacity(intensities.len() * per_category);
    for (ci, &intensity) in intensities.iter().enumerate() {
        for i in 0..per_category {
            let seed = (ci * 1000 + i) as u64;
            suite.push(random_workload(seed, num_threads, intensity));
        }
    }
    suite
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn table5_workloads_are_24_threads_50_percent_intensive() {
        let ws = table5_workloads();
        assert_eq!(ws.len(), 4);
        for w in &ws {
            assert_eq!(w.threads.len(), 24, "workload {} has 24 threads", w.name);
            assert!((w.intensity() - 0.5).abs() < 1e-9, "workload {}", w.name);
        }
        assert_eq!(ws[0].name, "A");
        assert_eq!(ws[3].name, "D");
    }

    #[test]
    fn random_workload_hits_requested_intensity() {
        for intensity in [0.25, 0.5, 0.75, 1.0] {
            let w = random_workload(3, 24, intensity);
            assert!((w.intensity() - intensity).abs() < 1e-9);
        }
    }

    #[test]
    fn random_workload_is_deterministic_in_seed() {
        assert_eq!(random_workload(5, 24, 0.5), random_workload(5, 24, 0.5));
        assert_ne!(random_workload(5, 24, 0.5), random_workload(6, 24, 0.5));
    }

    #[test]
    fn suite_sizes_match_paper() {
        let suite = workload_suite(&[0.5, 0.75, 1.0], 32, 24);
        assert_eq!(suite.len(), 96);
        let distinct: std::collections::HashSet<_> =
            suite.iter().map(|w| w.name.clone()).collect();
        assert_eq!(distinct.len(), 96, "workload names are unique");
    }

    #[test]
    fn zero_intensity_workload_has_no_intensive_threads() {
        let w = random_workload(1, 8, 0.0);
        assert_eq!(w.intensity(), 0.0);
        assert!(w.threads.iter().all(|p| !p.is_memory_intensive()));
    }

    #[test]
    fn mpki_scaling_scales_every_thread() {
        let w = random_workload(2, 4, 1.0);
        let scaled = w.with_mpki_scaled(0.5);
        for (orig, s) in w.threads.iter().zip(&scaled.threads) {
            assert!((s.mpki - orig.mpki * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn invalid_intensity_panics() {
        random_workload(0, 4, 1.5);
    }

    #[test]
    fn display_is_informative() {
        let w = random_workload(0, 24, 0.75);
        let s = w.to_string();
        assert!(s.contains("24 threads"));
        assert!(s.contains("75% intensive"));
    }
}
