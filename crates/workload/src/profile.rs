//! Benchmark profiles: the paper's Table 4 and Table 1 characteristics.

use std::fmt;

/// MPKI threshold above which the paper labels a benchmark
/// *memory-intensive* (Section 6: "benchmarks with an average MPKI
/// greater than one are labeled as memory-intensive").
pub const MEMORY_INTENSIVE_MPKI: f64 = 1.0;

/// A thread's memory access behavior, characterized the way the paper
/// characterizes it (Section 2.1): memory intensity, row-buffer locality
/// and bank-level parallelism.
///
/// # Example
///
/// ```
/// use tcm_workload::BenchmarkProfile;
///
/// let p = BenchmarkProfile::new("mcf", 97.38, 0.4241, 6.20);
/// assert!(p.is_memory_intensive());
/// assert!(!BenchmarkProfile::new("povray", 0.01, 0.8722, 1.43).is_memory_intensive());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC CPU2006 short name, or a microbenchmark name).
    pub name: String,
    /// Last-level-cache misses per thousand instructions.
    pub mpki: f64,
    /// Inherent row-buffer locality in `[0, 1]`: probability that an
    /// access targets the row the thread last opened in that bank.
    pub rbl: f64,
    /// Bank-level parallelism: average number of banks with outstanding
    /// requests while the thread has any outstanding request.
    pub blp: f64,
}

impl BenchmarkProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `mpki` is negative, `rbl` is outside `[0, 1]`, or `blp`
    /// is less than 1 when `mpki > 0` (a thread with misses always has at
    /// least one bank outstanding).
    pub fn new(name: impl Into<String>, mpki: f64, rbl: f64, blp: f64) -> Self {
        assert!(mpki >= 0.0, "mpki must be non-negative");
        assert!((0.0..=1.0).contains(&rbl), "rbl must be within [0, 1]");
        assert!(
            mpki == 0.0 || blp >= 1.0,
            "blp must be at least 1 for threads that miss"
        );
        Self {
            name: name.into(),
            mpki,
            rbl,
            blp,
        }
    }

    /// The *random-access* microbenchmark of the paper's Table 1:
    /// MPKI 100, BLP 72.7 % of the 16-bank maximum (≈ 11.6 banks),
    /// RBL 0.1 %.
    pub fn random_access() -> Self {
        Self::new("random-access", 100.0, 0.001, 11.63)
    }

    /// The *streaming* microbenchmark of the paper's Table 1: MPKI 100,
    /// BLP 0.3 % of maximum (≈ 1 bank), RBL 99 %.
    pub fn streaming() -> Self {
        Self::new("streaming", 100.0, 0.99, 1.0)
    }

    /// Whether the paper would label this benchmark memory-intensive
    /// (MPKI > 1).
    pub fn is_memory_intensive(&self) -> bool {
        self.mpki > MEMORY_INTENSIVE_MPKI
    }

    /// Returns a copy whose MPKI is scaled by `factor`, used to model a
    /// larger or smaller last-level cache (the paper's Table 8 cache-size
    /// sweep): a bigger cache filters more misses, lowering MPKI.
    pub fn with_mpki_scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Self {
            name: self.name.clone(),
            mpki: self.mpki * factor,
            rbl: self.rbl,
            blp: self.blp,
        }
    }
}

impl fmt::Display for BenchmarkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (MPKI {:.2}, RBL {:.1}%, BLP {:.2})",
            self.name,
            self.mpki,
            self.rbl * 100.0,
            self.blp
        )
    }
}

/// All 25 SPEC CPU2006 benchmark characterizations from the paper's
/// Table 4, ordered by descending MPKI exactly as printed.
///
/// RBL is stored as a fraction in `[0, 1]` (the paper prints percent).
pub fn spec2006() -> Vec<BenchmarkProfile> {
    let rows: [(&str, f64, f64, f64); 25] = [
        ("mcf", 97.38, 42.41, 6.20),
        ("libquantum", 50.00, 99.22, 1.05),
        ("leslie3d", 49.35, 91.18, 1.51),
        ("soplex", 46.70, 88.84, 1.79),
        ("lbm", 43.52, 95.17, 2.82),
        ("GemsFDTD", 31.79, 56.22, 3.15),
        ("sphinx3", 24.94, 84.78, 2.24),
        ("xalancbmk", 22.95, 72.01, 2.35),
        ("omnetpp", 21.63, 45.71, 4.37),
        ("cactusADM", 12.01, 19.05, 1.43),
        ("astar", 9.26, 75.24, 1.61),
        ("hmmer", 5.66, 34.42, 1.25),
        ("bzip2", 3.98, 71.44, 1.87),
        ("h264ref", 2.30, 90.34, 1.19),
        ("gromacs", 0.98, 89.25, 1.54),
        ("gobmk", 0.77, 65.76, 1.52),
        ("sjeng", 0.39, 12.47, 1.57),
        ("gcc", 0.34, 70.92, 1.96),
        ("dealII", 0.21, 86.83, 1.22),
        ("wrf", 0.21, 92.34, 1.23),
        ("namd", 0.19, 93.05, 1.16),
        ("perlbench", 0.12, 81.59, 1.66),
        ("calculix", 0.10, 88.71, 1.20),
        ("tonto", 0.03, 88.60, 1.81),
        ("povray", 0.01, 87.22, 1.43),
    ];
    rows.iter()
        .map(|&(name, mpki, rbl_pct, blp)| BenchmarkProfile::new(name, mpki, rbl_pct / 100.0, blp))
        .collect()
}

/// Looks up a Table 4 benchmark by name. Accepts the abbreviations the
/// paper's Table 5 uses (`perl` for `perlbench`, `bzip` for `bzip2`,
/// `leslie` for `leslie3d`).
pub fn spec_by_name(name: &str) -> Option<BenchmarkProfile> {
    let canonical = match name {
        "perl" => "perlbench",
        "bzip" => "bzip2",
        "leslie" => "leslie3d",
        other => other,
    };
    spec2006().into_iter().find(|p| p.name == canonical)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_25_benchmarks_sorted_by_mpki() {
        let profiles = spec2006();
        assert_eq!(profiles.len(), 25);
        for pair in profiles.windows(2) {
            assert!(pair[0].mpki >= pair[1].mpki, "Table 4 order is by MPKI");
        }
    }

    #[test]
    fn intensive_split_matches_paper() {
        // MPKI > 1 labels 14 benchmarks intensive (mcf .. h264ref).
        let profiles = spec2006();
        let intensive: Vec<_> = profiles.iter().filter(|p| p.is_memory_intensive()).collect();
        assert_eq!(intensive.len(), 14);
        assert_eq!(intensive.last().unwrap().name, "h264ref");
    }

    #[test]
    fn lookup_handles_table5_abbreviations() {
        assert_eq!(spec_by_name("perl").unwrap().name, "perlbench");
        assert_eq!(spec_by_name("bzip").unwrap().name, "bzip2");
        assert_eq!(spec_by_name("leslie").unwrap().name, "leslie3d");
        assert_eq!(spec_by_name("mcf").unwrap().mpki, 97.38);
        assert!(spec_by_name("doesnotexist").is_none());
    }

    #[test]
    fn microbenchmarks_match_table1() {
        let random = BenchmarkProfile::random_access();
        let streaming = BenchmarkProfile::streaming();
        // Same intensity, opposite BLP/RBL.
        assert_eq!(random.mpki, streaming.mpki);
        assert!(random.blp > 10.0 && streaming.blp <= 1.0);
        assert!(streaming.rbl > 0.9 && random.rbl < 0.01);
    }

    #[test]
    fn cache_scaling_changes_only_mpki() {
        let p = spec_by_name("mcf").unwrap();
        let scaled = p.with_mpki_scaled(0.5);
        assert!((scaled.mpki - p.mpki * 0.5).abs() < 1e-12);
        assert_eq!(scaled.rbl, p.rbl);
        assert_eq!(scaled.blp, p.blp);
    }

    #[test]
    #[should_panic(expected = "rbl")]
    fn invalid_rbl_is_rejected() {
        BenchmarkProfile::new("bad", 1.0, 1.5, 1.0);
    }

    #[test]
    fn display_mentions_all_three_characteristics() {
        let s = spec_by_name("mcf").unwrap().to_string();
        assert!(s.contains("mcf") && s.contains("97.38") && s.contains("6.20"));
    }
}
