//! Workload substrate: synthetic threads calibrated to the paper's
//! benchmark characteristics.
//!
//! The paper drives its simulator with Pin traces of SPEC CPU2006. Those
//! traces are proprietary, but the paper publishes — in its Table 4 — the
//! three per-benchmark statistics that *every* evaluated scheduling
//! policy's behavior depends on: memory intensity (MPKI), row-buffer
//! locality (RBL) and bank-level parallelism (BLP). This crate substitutes
//! statistical trace generators calibrated to exactly those triples:
//!
//! * [`BenchmarkProfile`] — a named (MPKI, RBL, BLP) triple;
//!   [`spec2006`] returns all 25 benchmarks of Table 4, and
//!   [`BenchmarkProfile::random_access`] / [`BenchmarkProfile::streaming`]
//!   reproduce the two microbenchmarks of Table 1.
//! * [`TraceGenerator`] — a deterministic, seeded generator that emits
//!   miss *bursts*: `BLP`-sized groups of concurrent accesses to distinct
//!   banks, separated by geometrically distributed instruction gaps that
//!   keep long-run MPKI on target, with per-bank rows re-used with
//!   probability `RBL`.
//! * [`WorkloadSpec`] — a multiprogrammed mix of profiles;
//!   [`table5_workloads`] reconstructs the paper's four representative
//!   workloads A–D and [`random_workload`] draws the randomized mixes used
//!   for the 96-workload studies.
//!
//! # Example
//!
//! ```
//! use tcm_workload::{spec2006, MachineShape, TraceGenerator};
//!
//! let mcf = spec2006().iter().find(|p| p.name == "mcf").unwrap().clone();
//! let shape = MachineShape { num_channels: 4, banks_per_channel: 4, rows_per_bank: 16384 };
//! let mut generator = TraceGenerator::new(&mcf, shape, 42);
//! let burst = generator.next_burst();
//! assert!(!burst.accesses.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

mod generator;
mod profile;
mod workload;

pub use generator::{MachineShape, TraceBurst, TraceGenerator};
pub use profile::{spec2006, spec_by_name, BenchmarkProfile, MEMORY_INTENSIVE_MPKI};
pub use workload::{random_workload, table5_workloads, workload_suite, WorkloadSpec};
