//! Statistical trace generation calibrated to (MPKI, RBL, BLP).

use crate::BenchmarkProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcm_types::{GlobalBank, MemAddress, Row};

/// How many rows a single-bank (streaming-like) access pattern exhausts
/// in its current bank before migrating to the next one.
///
/// Streaming code walks large contiguous buffers; with open-page address
/// mappings a stream occupies one bank for many consecutive rows, which
/// is what makes such threads *hostile*: they generate a steady stream of
/// row hits to one bank, denying it to everyone else for long stretches
/// (paper Section 2.4). Raising the dwell lengthens those
/// denial-of-service windows.
pub const DEFAULT_HOME_DWELL_ROWS: u32 = 1;

/// The memory-system shape addresses are generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineShape {
    /// Number of memory channels.
    pub num_channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
}

impl MachineShape {
    /// Total banks across all channels.
    pub fn total_banks(&self) -> usize {
        self.num_channels * self.banks_per_channel
    }
}

/// One miss burst emitted by a [`TraceGenerator`]: `gap` instructions of
/// pure compute, then `accesses.len()` concurrent cache misses issued at
/// the same instruction slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBurst {
    /// Instructions executed since the previous burst (at least 1).
    pub gap: u64,
    /// The miss addresses; distinct banks within one burst.
    pub accesses: Vec<MemAddress>,
}

/// Deterministic, seeded generator of a synthetic thread's miss stream.
///
/// Calibration (see DESIGN.md §3):
///
/// * **BLP** — each burst contains `⌊BLP⌋` or `⌈BLP⌉` accesses (chosen so
///   the mean equals BLP, clamped to the machine's bank count), each to a
///   distinct bank. Low-BLP threads stay on a *home bank*, migrating only
///   when their row changes — the paper's streaming behavior; high-BLP
///   threads spread each burst across banks.
/// * **RBL** — per global bank the generator keeps the thread's current
///   row; an access re-uses it with probability RBL, otherwise it moves
///   to a fresh row (which is when a streaming thread advances its home
///   bank).
/// * **MPKI** — the instruction gap before a burst of size `b` is
///   exponentially distributed with mean `b · 1000 / MPKI`, making the
///   long-run miss rate `MPKI` per 1000 instructions.
///
/// The generator never consults simulation time, so a thread's trace is
/// identical in shared and alone runs — the property that makes
/// `slowdown = IPC_alone / IPC_shared` well defined.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    shape: MachineShape,
    rng: StdRng,
    /// Current row per global bank (flat index).
    rows: Vec<Row>,
    /// Home bank for low-BLP (streaming-like) access patterns.
    home_bank: usize,
    /// Row changes at the home bank since it last migrated.
    home_rows_used: u32,
    /// Row changes after which the home bank migrates (bank dwell).
    home_dwell_rows: u32,
    /// Burst size distribution: `base` plus a Bernoulli(extra_prob) extra.
    base_burst: usize,
    extra_prob: f64,
    /// Mean instruction gap per single miss (1000 / MPKI).
    instrs_per_miss: f64,
    /// Scratch index list for bank selection, reused across bursts so
    /// the per-burst Fisher–Yates allocates nothing.
    bank_scratch: Vec<usize>,
}

impl TraceGenerator {
    /// Creates a generator for `profile` on `shape`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile has `mpki == 0` — compute-only threads never
    /// produce a burst, so the simulator models them without a generator
    /// (see [`TraceGenerator::is_compute_only`] for the guard helper).
    pub fn new(profile: &BenchmarkProfile, shape: MachineShape, seed: u64) -> Self {
        assert!(
            profile.mpki > 0.0,
            "compute-only thread has no miss trace; guard with is_compute_only"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let total_banks = shape.total_banks();
        let blp = profile.blp.clamp(1.0, total_banks as f64);
        let base_burst = blp.floor() as usize;
        let extra_prob = blp - blp.floor();
        let rows = (0..total_banks)
            .map(|_| Row::new(rng.gen_range(0..shape.rows_per_bank)))
            .collect();
        let home_bank = rng.gen_range(0..total_banks);
        Self {
            home_rows_used: 0,
            home_dwell_rows: DEFAULT_HOME_DWELL_ROWS,
            profile: profile.clone(),
            shape,
            rng,
            rows,
            home_bank,
            base_burst,
            extra_prob,
            instrs_per_miss: 1000.0 / profile.mpki,
            bank_scratch: Vec::with_capacity(total_banks),
        }
    }

    /// Whether `profile` generates no misses at all (MPKI = 0).
    pub fn is_compute_only(profile: &BenchmarkProfile) -> bool {
        profile.mpki <= 0.0
    }

    /// The profile this generator is calibrated to.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Generates the next miss burst.
    pub fn next_burst(&mut self) -> TraceBurst {
        let mut accesses = Vec::new();
        let gap = self.next_burst_into(&mut accesses);
        TraceBurst { gap, accesses }
    }

    /// Like [`TraceGenerator::next_burst`] but writes the burst's
    /// accesses into `out` (cleared first), reusing its capacity, and
    /// returns the instruction gap. This is `next_burst` — the owned
    /// variant is a wrapper — so the RNG draw order, and therefore the
    /// generated trace, is identical bit-for-bit.
    pub fn next_burst_into(&mut self, out: &mut Vec<MemAddress>) -> u64 {
        let size = self.sample_burst_size();
        let gap = self.sample_gap(size);
        let mut banks = std::mem::take(&mut self.bank_scratch);
        self.choose_banks_into(size, &mut banks);
        out.clear();
        out.reserve(banks.len());
        for &flat in &banks {
            out.push(self.access_bank(flat));
        }
        self.bank_scratch = banks;
        gap
    }

    fn sample_burst_size(&mut self) -> usize {
        let extra = usize::from(self.rng.gen_bool(self.extra_prob));
        (self.base_burst + extra).clamp(1, self.shape.total_banks())
    }

    fn sample_gap(&mut self, burst_size: usize) -> u64 {
        let mean = self.instrs_per_miss * burst_size as f64;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        ((-mean * u.ln()).round() as u64).max(1)
    }

    /// Picks `size` distinct banks into `out`. Streaming-like threads
    /// (base burst of 1, no fractional extra worth spreading) sit on
    /// their home bank; others sample without replacement.
    fn choose_banks_into(&mut self, size: usize, out: &mut Vec<usize>) {
        out.clear();
        if size == 1 {
            out.push(self.home_bank);
            return;
        }
        // Partial Fisher–Yates over the reused scratch index list.
        let total = self.shape.total_banks();
        out.extend(0..total);
        for i in 0..size {
            let j = self.rng.gen_range(i..total);
            out.swap(i, j);
        }
        out.truncate(size);
    }

    /// Produces the address for one access to the flat bank index,
    /// applying the RBL row re-use rule.
    fn access_bank(&mut self, flat: usize) -> MemAddress {
        let stay = self.rng.gen_bool(self.profile.rbl.clamp(0.0, 1.0));
        if !stay {
            // Advance to a fresh row; streaming threads also advance
            // their home bank here (they exhausted the row).
            let next = Row::new((self.rows[flat].index() + 1) % self.shape.rows_per_bank);
            self.rows[flat] = next;
            if flat == self.home_bank {
                self.home_rows_used += 1;
                if self.home_rows_used >= self.home_dwell_rows {
                    self.home_rows_used = 0;
                    self.home_bank = (self.home_bank + 1) % self.shape.total_banks();
                }
            }
        }
        let g = GlobalBank::from_flat(flat, self.shape.banks_per_channel);
        MemAddress::new(g.channel, g.bank, self.rows[flat])
    }
}

/// Convenience conversions for building shapes from a system config.
impl From<&tcm_types::SystemConfig> for MachineShape {
    fn from(cfg: &tcm_types::SystemConfig) -> Self {
        Self {
            num_channels: cfg.num_channels(),
            banks_per_channel: cfg.banks_per_channel,
            rows_per_bank: cfg.rows_per_bank,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::spec_by_name;
    use std::collections::HashSet;

    fn shape() -> MachineShape {
        MachineShape {
            num_channels: 4,
            banks_per_channel: 4,
            rows_per_bank: 16384,
        }
    }

    fn run_bursts(profile: &BenchmarkProfile, n: usize, seed: u64) -> Vec<TraceBurst> {
        let mut g = TraceGenerator::new(profile, shape(), seed);
        (0..n).map(|_| g.next_burst()).collect()
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let p = spec_by_name("mcf").unwrap();
        let a = run_bursts(&p, 100, 7);
        let b = run_bursts(&p, 100, 7);
        let c = run_bursts(&p, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn long_run_mpki_matches_profile() {
        for name in ["mcf", "libquantum", "hmmer", "gcc"] {
            let p = spec_by_name(name).unwrap();
            let bursts = run_bursts(&p, 4000, 1);
            let misses: usize = bursts.iter().map(|b| b.accesses.len()).sum();
            let instrs: u64 = bursts.iter().map(|b| b.gap).sum();
            let mpki = misses as f64 * 1000.0 / instrs as f64;
            let rel_err = (mpki - p.mpki).abs() / p.mpki;
            assert!(
                rel_err < 0.10,
                "{name}: generated MPKI {mpki:.2} vs target {:.2}",
                p.mpki
            );
        }
    }

    #[test]
    fn burst_sizes_average_to_blp() {
        let p = spec_by_name("mcf").unwrap(); // BLP 6.20
        let bursts = run_bursts(&p, 4000, 2);
        let mean =
            bursts.iter().map(|b| b.accesses.len()).sum::<usize>() as f64 / bursts.len() as f64;
        assert!((mean - p.blp).abs() < 0.2, "mean burst {mean:.2} vs BLP {}", p.blp);
    }

    #[test]
    fn burst_banks_are_distinct() {
        let p = BenchmarkProfile::random_access();
        for burst in run_bursts(&p, 200, 3) {
            let banks: HashSet<_> = burst.accesses.iter().map(|a| a.global_bank()).collect();
            assert_eq!(banks.len(), burst.accesses.len());
        }
    }

    #[test]
    fn row_reuse_rate_tracks_rbl() {
        for name in ["libquantum", "mcf", "cactusADM"] {
            let p = spec_by_name(name).unwrap();
            let mut g = TraceGenerator::new(&p, shape(), 11);
            let mut last_row: std::collections::HashMap<GlobalBank, Row> = Default::default();
            let (mut hits, mut total) = (0u64, 0u64);
            for _ in 0..6000 {
                for a in g.next_burst().accesses {
                    let bank = a.global_bank();
                    if let Some(prev) = last_row.insert(bank, a.row) {
                        total += 1;
                        if prev == a.row {
                            hits += 1;
                        }
                    }
                }
            }
            let rbl = hits as f64 / total as f64;
            assert!(
                (rbl - p.rbl).abs() < 0.05,
                "{name}: shadow RBL {rbl:.3} vs target {:.3}",
                p.rbl
            );
        }
    }

    #[test]
    fn streaming_thread_stays_on_one_bank_until_row_change() {
        let p = BenchmarkProfile::streaming();
        let mut g = TraceGenerator::new(&p, shape(), 5);
        let mut bank_changes = 0;
        let mut row_changes = 0;
        let mut prev: Option<MemAddress> = None;
        for _ in 0..2000 {
            let b = g.next_burst();
            assert_eq!(b.accesses.len(), 1, "streaming bursts have size 1");
            let a = b.accesses[0];
            if let Some(p) = prev {
                if p.global_bank() != a.global_bank() {
                    bank_changes += 1;
                }
                if p.row != a.row || p.global_bank() != a.global_bank() {
                    row_changes += 1;
                }
            }
            prev = Some(a);
        }
        // RBL 0.99: roughly 1% row changes, and bank changes only at row
        // changes.
        assert!(row_changes < 60, "row changes {row_changes}");
        assert!(bank_changes <= row_changes);
    }

    #[test]
    fn next_burst_into_is_interchangeable_with_next_burst() {
        let p = spec_by_name("mcf").unwrap();
        let mut owned = TraceGenerator::new(&p, shape(), 42);
        let mut into = TraceGenerator::new(&p, shape(), 42);
        let mut buf = Vec::new();
        for i in 0..500 {
            let burst = owned.next_burst();
            // Alternate which variant the "into" generator uses, proving
            // they draw from the RNG identically and can interleave.
            if i % 2 == 0 {
                let gap = into.next_burst_into(&mut buf);
                assert_eq!(gap, burst.gap);
                assert_eq!(buf, burst.accesses);
            } else {
                assert_eq!(into.next_burst(), burst);
            }
        }
    }

    #[test]
    fn gaps_are_positive() {
        let p = spec_by_name("povray").unwrap(); // extremely sparse misses
        for b in run_bursts(&p, 50, 9) {
            assert!(b.gap >= 1);
        }
    }

    #[test]
    fn compute_only_guard() {
        let p = BenchmarkProfile::new("idle", 0.0, 0.5, 1.0);
        assert!(TraceGenerator::is_compute_only(&p));
        assert!(!TraceGenerator::is_compute_only(&spec_by_name("mcf").unwrap()));
    }

    #[test]
    fn shape_from_system_config() {
        let cfg = tcm_types::SystemConfig::paper_baseline();
        let s = MachineShape::from(&cfg);
        assert_eq!(s.total_banks(), 16);
        assert_eq!(s.rows_per_bank, 16384);
    }
}
