//! Property tests for the statistical trace generator: calibration and
//! structural invariants over arbitrary (MPKI, RBL, BLP) profiles.

use proptest::prelude::*;
use std::collections::HashSet;
use tcm_workload::{BenchmarkProfile, MachineShape, TraceGenerator};

fn shape() -> MachineShape {
    MachineShape {
        num_channels: 4,
        banks_per_channel: 4,
        rows_per_bank: 16384,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bursts always contain at least one access, to distinct banks, with
    /// valid addresses, and gaps are positive.
    #[test]
    fn bursts_are_structurally_valid(
        mpki in 0.1..150.0f64,
        rbl in 0.0..1.0f64,
        blp in 1.0..16.0f64,
        seed in any::<u64>(),
    ) {
        let profile = BenchmarkProfile::new("prop", mpki, rbl, blp);
        let mut generator = TraceGenerator::new(&profile, shape(), seed);
        for _ in 0..200 {
            let burst = generator.next_burst();
            prop_assert!(burst.gap >= 1);
            prop_assert!(!burst.accesses.is_empty());
            let banks: HashSet<_> = burst.accesses.iter().map(|a| a.global_bank()).collect();
            prop_assert_eq!(banks.len(), burst.accesses.len(), "distinct banks per burst");
            for a in &burst.accesses {
                prop_assert!(a.channel.index() < 4);
                prop_assert!(a.bank.index() < 4);
                prop_assert!(a.row.index() < 16384);
            }
        }
    }

    /// Long-run MPKI lands within 15% of the target.
    #[test]
    fn mpki_calibration(
        mpki in 1.0..120.0f64,
        rbl in 0.0..1.0f64,
        blp in 1.0..12.0f64,
    ) {
        let profile = BenchmarkProfile::new("prop", mpki, rbl, blp);
        let mut generator = TraceGenerator::new(&profile, shape(), 42);
        let mut misses = 0usize;
        let mut instructions = 0u64;
        for _ in 0..3000 {
            let b = generator.next_burst();
            misses += b.accesses.len();
            instructions += b.gap;
        }
        let measured = misses as f64 * 1000.0 / instructions as f64;
        let rel = (measured - mpki).abs() / mpki;
        prop_assert!(rel < 0.15, "MPKI {measured:.2} vs target {mpki:.2}");
    }

    /// Mean burst size lands within 10% (absolute 0.3) of the BLP target.
    #[test]
    fn blp_calibration(blp in 1.0..14.0f64) {
        let profile = BenchmarkProfile::new("prop", 50.0, 0.5, blp);
        let mut generator = TraceGenerator::new(&profile, shape(), 7);
        let total: usize = (0..3000).map(|_| generator.next_burst().accesses.len()).sum();
        let mean = total as f64 / 3000.0;
        prop_assert!((mean - blp).abs() < 0.3, "burst mean {mean:.2} vs BLP {blp:.2}");
    }

    /// The same seed reproduces the same trace; different seeds diverge.
    #[test]
    fn determinism_in_seed(seed in any::<u64>()) {
        let profile = BenchmarkProfile::new("prop", 30.0, 0.6, 3.0);
        let mut a = TraceGenerator::new(&profile, shape(), seed);
        let mut b = TraceGenerator::new(&profile, shape(), seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_burst(), b.next_burst());
        }
    }
}
